//! The router-serialized, event-driven threaded runtime.
//!
//! Processes run on real OS threads and exchange messages through a router
//! thread, but *time* is logical: the router owns a hierarchical
//! [`TimerWheel`] holding every pending deadline — message deliveries, timer
//! fires, scheduled fault-plan injections — and advances its virtual clock
//! directly to the next due instant whenever nothing is in flight. Nothing
//! ever sleeps through empty ticks, so a run's wall-clock cost is
//! proportional to the work it does, not to the virtual span it covers.
//!
//! # Quiescence protocol
//!
//! The router tracks `outstanding`: the number of node events it has
//! forwarded whose action replies it has not yet received (every node
//! answers every event, even with an empty action batch). Because the
//! router is the only dispatcher, the system is quiescent exactly when,
//! in one router observation: the inbox is empty, `outstanding == 0`, and
//! the wheel holds no deadline. [`Runtime::drain`] is a handshake against
//! that single-threaded judgement — no settle-polling, no grace windows.
//!
//! # Virtual-clock advancement
//!
//! The clock only advances while `outstanding == 0` and the inbox is
//! empty: any pending reply may schedule new work at the *current* instant,
//! so advancing earlier could fire a later deadline first. All events due
//! at one instant are dispatched concurrently (real parallelism across
//! destinations); delay-zero follow-ups land at the same instant and are
//! dispatched before the clock moves again.

use crate::fault::{FaultPlan, Injection};
use crate::id::{MsgId, ProcessId, TimerId};
use crate::link::{LinkModel, LinkVerdict};
use crate::observe::{metric, EventSinkHandle, MsgClass, ObsEvent, ObsHandle};
use crate::process::{Action, Context, Process, ReceiveFilter};
use crate::sim::CrashRegistry;
use crate::time::VirtualTime;
use crate::timers::CancelledTimers;
use crate::trace::{SimStats, StopReason, Trace, TraceEvent, TraceEventKind};
use crate::wheel::TimerWheel;
use crossbeam::channel::{self, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-link artificial delay, in virtual ticks, chosen by the router
/// before forwarding.
pub type LinkDelay = Box<dyn Fn(ProcessId, ProcessId) -> u64 + Send>;

/// Predicate marking payloads as infrastructure; the threaded mirror of
/// `SimBuilder::classify`.
pub type Classify<M> = Box<dyn Fn(&M) -> bool + Send>;

/// Per-payload wire-byte measure; the threaded mirror of
/// `SimBuilder::measure`.
pub type Measure<M> = Box<dyn Fn(&M) -> u64 + Send>;

/// Configuration for the threaded runtime.
pub struct RuntimeConfig<M = ()> {
    /// Seed feeding each node's deterministic rng (node `i` uses
    /// `seed + i`). Scheduling itself is real-concurrency nondeterminism.
    pub seed: u64,
    /// Optional artificial per-link delay, in virtual ticks, applied by
    /// the router before forwarding a message, modelling a slow
    /// asynchronous network. Ignored when [`RuntimeConfig::link`] is set.
    pub delay: Option<LinkDelay>,
    /// Optional faulty-network model: the threaded mirror of the
    /// simulator's link seam. The router consults it once per send, in
    /// send order, with its own seeded rng; verdict delays are virtual
    /// ticks on the router's wheel, so the *same* [`LinkModel`] drives
    /// both backends — what E10's transport-backed conformance leg relies
    /// on. Takes precedence over [`RuntimeConfig::delay`].
    pub link: Option<Box<dyn LinkModel + Send>>,
    /// Whether to record payload `Debug` text in the trace.
    pub record_payloads: bool,
    /// Optional classifier marking payloads as infrastructure (`true`)
    /// vs model-level application messages; see `SimBuilder::classify`.
    pub classify: Option<Classify<M>>,
    /// Optional wire-byte measure, charged to `SimStats::wire_bytes` once
    /// per send on the sender's side (duplicated and dropped copies are
    /// the network's doing); the threaded mirror of `SimBuilder::measure`.
    pub measure: Option<Measure<M>>,
    /// Optional live crash view. When set, the router marks every crash
    /// in it — the threaded mirror of the simulator's built-in registry,
    /// so oracle-configured processes (which poll a
    /// [`CrashRegistry`]) can run on real threads too.
    pub registry: Option<CrashRegistry>,
    /// Optional telemetry sink (see [`crate::observe`]); the threaded
    /// mirror of `SimBuilder::observe`. Fed the same counter/histogram
    /// facts as the simulator plus router-only wall-clock and occupancy
    /// samples (queue depth, wheel occupancy, stall-vs-compute split).
    /// Strictly execution-neutral: the sink sees already-decided facts
    /// and has no path back into scheduling, and the wall-clock reads
    /// that feed it are only taken when a sink is installed.
    pub obs: Option<ObsHandle>,
    /// Optional trace-event sink (see [`crate::observe::EventSink`]); the
    /// threaded mirror of `SimBuilder::event_sink`. Every event the
    /// router appends to its trace is also handed, by reference, to the
    /// sink — the live feed the streaming sFS property monitors consume.
    /// Execution-neutral under the same contract as `obs`: the sink sees
    /// already-recorded events and has no path back into scheduling.
    pub sink: Option<EventSinkHandle>,
    /// Batching fast path: when the router dispatches a due instant,
    /// deliveries and timer fires aimed at the same destination are
    /// coalesced into a single node-event batch — one channel send and one
    /// reply per flush-destination instead of one per message. Trace
    /// events are still recorded per message, in firing order, and each
    /// destination receives its events in exactly the order the unbatched
    /// router would have forwarded them, so per-process delivery order
    /// (and with it the happens-before model) is untouched. This is what
    /// lets one router serve Θ(n²) detection-round traffic at scale
    /// (experiment E11).
    pub batch: bool,
    /// Scheduled crash/external injections, placed on the wheel at
    /// construction. Entries take the earliest insertion sequence numbers
    /// at their instants, so an injection at tick `T` is applied before
    /// any delivery or timer due at `T` — the threaded mirror of the
    /// simulator pushing plan entries at build time.
    pub faults: FaultPlan<M>,
    /// Virtual-time horizon: the wheel never advances past it. Raw
    /// runtimes driven by hand default to [`VirtualTime::MAX`]
    /// (effectively unbounded); spec-driven runs wire their configured
    /// horizon here.
    pub max_time: VirtualTime,
    /// Event budget: once the trace holds this many events the wheel
    /// stops advancing (directly injected events are still recorded). The
    /// backstop that bounds free-running systems — self-rearming
    /// heartbeats would otherwise burn CPU forever at virtual speed.
    pub max_events: usize,
}

impl<M> Default for RuntimeConfig<M> {
    fn default() -> Self {
        RuntimeConfig {
            seed: 0,
            delay: None,
            link: None,
            record_payloads: false,
            classify: None,
            measure: None,
            registry: None,
            obs: None,
            sink: None,
            batch: false,
            faults: FaultPlan::new(),
            max_time: VirtualTime::MAX,
            max_events: 1_000_000,
        }
    }
}

impl<M> fmt::Debug for RuntimeConfig<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuntimeConfig")
            .field("seed", &self.seed)
            .field("has_delay", &self.delay.is_some())
            .field("has_link", &self.link.is_some())
            .field("record_payloads", &self.record_payloads)
            .field("has_obs", &self.obs.is_some())
            .field("has_sink", &self.sink.is_some())
            .field("batch", &self.batch)
            .field("faults", &self.faults.len())
            .field("max_time", &self.max_time)
            .field("max_events", &self.max_events)
            .finish()
    }
}

enum NodeEvent<M> {
    Message {
        at: VirtualTime,
        from: ProcessId,
        msg: M,
    },
    Timer {
        at: VirtualTime,
        id: TimerId,
    },
    External {
        at: VirtualTime,
        payload: M,
    },
    /// A coalesced run of events for one destination, in the exact order
    /// the unbatched router would have forwarded them individually.
    Batch {
        at: VirtualTime,
        items: Vec<BatchItem<M>>,
    },
    Halt,
}

/// One element of a coalesced [`NodeEvent::Batch`].
enum BatchItem<M> {
    Message { from: ProcessId, msg: M },
    Timer { id: TimerId },
}

enum ToRouter<M> {
    Actions {
        from: ProcessId,
        actions: Vec<Action<M>>,
        payload_reprs: Vec<Option<String>>,
    },
    InjectExternal {
        pid: ProcessId,
        payload: M,
        repr: Option<String>,
    },
    InjectCrash {
        pid: ProcessId,
    },
    /// Quiescence handshake: the router answers `true` the moment it
    /// observes genuine quiescence (empty inbox, no outstanding replies,
    /// empty wheel) and `false` the moment it stalls instead (deadlines
    /// remain but lie beyond the horizon or the event budget is spent).
    WaitQuiescent {
        reply: Sender<bool>,
    },
    Shutdown,
}

enum Due<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: MsgId,
        payload: M,
        repr: Option<String>,
        infra: bool,
        sent_at: VirtualTime,
    },
    Fire {
        pid: ProcessId,
        id: TimerId,
    },
    /// A scheduled fault-plan entry.
    Plan {
        pid: ProcessId,
        injection: Injection<M>,
    },
}

/// A running system of `n` process threads plus a router thread.
///
/// Construct with [`Runtime::spawn`]; drive with [`Runtime::run_for`],
/// [`Runtime::inject_external`], and [`Runtime::crash`]; finish with
/// [`Runtime::shutdown`], which returns the recorded [`Trace`].
pub struct Runtime<M> {
    n: usize,
    to_router: Sender<ToRouter<M>>,
    router: Option<JoinHandle<Trace>>,
    nodes: Vec<JoinHandle<()>>,
}

impl<M> fmt::Debug for Runtime<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> Runtime<M> {
    /// Spawns `n` process threads (built by `make`) and the router.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn spawn<F>(n: usize, config: RuntimeConfig<M>, mut make: F) -> Self
    where
        F: FnMut(ProcessId) -> Box<dyn Process<M> + Send>,
    {
        assert!(n > 0, "a system needs at least one process");
        let (to_router, router_rx) = channel::unbounded::<ToRouter<M>>();
        let mut node_txs = Vec::with_capacity(n);
        let mut nodes = Vec::with_capacity(n);
        let record_payloads = config.record_payloads;
        for pid in ProcessId::all(n) {
            let (tx, rx) = channel::unbounded::<NodeEvent<M>>();
            node_txs.push(tx);
            let process = make(pid);
            let to_router = to_router.clone();
            let seed = config.seed.wrapping_add(pid.index() as u64);
            nodes.push(
                std::thread::Builder::new()
                    .name(format!("node-{}", pid.index()))
                    .spawn(move || node_main(pid, n, process, rx, to_router, seed, record_payloads))
                    .expect("spawn node thread"),
            );
        }
        let router = std::thread::Builder::new()
            .name("router".to_owned())
            .spawn(move || router_main(n, config, router_rx, node_txs))
            .expect("spawn router thread");
        Runtime {
            n,
            to_router,
            router: Some(router),
            nodes,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// A cloneable, `Send` handle for injecting stimuli from other
    /// threads while this runtime keeps running — the concurrent twin of
    /// [`Runtime::inject_external`] / [`Runtime::crash`].
    pub fn injector(&self) -> Injector<M> {
        Injector {
            to_router: self.to_router.clone(),
        }
    }

    /// Delivers an external stimulus to `pid` (e.g. a forced suspicion).
    /// It is applied at whatever virtual instant the router's clock has
    /// reached when the injection is handled; scripted injections at
    /// exact virtual times belong in [`RuntimeConfig::faults`].
    pub fn inject_external(&self, pid: ProcessId, payload: M) {
        let repr = Some(format!("{payload:?}"));
        let _ = self
            .to_router
            .send(ToRouter::InjectExternal { pid, payload, repr });
    }

    /// Crashes `pid` permanently, at the router's current virtual
    /// instant. Scripted crashes at exact virtual times belong in
    /// [`RuntimeConfig::faults`].
    pub fn crash(&self, pid: ProcessId) {
        let _ = self.to_router.send(ToRouter::InjectCrash { pid });
    }

    /// Lets the system run for the given wall-clock duration. The router
    /// advances virtual time at compute speed the whole while (bounded by
    /// [`RuntimeConfig::max_time`] and [`RuntimeConfig::max_events`]);
    /// this is only useful to leave room for wall-clock-timed injections.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Blocks until the system is **quiescent** — the router observed, in
    /// one step, an empty inbox, zero outstanding node replies, and an
    /// empty wheel — or until the run can no longer progress, or until
    /// `timeout` elapses. Returns whether genuine quiescence was reached.
    ///
    /// A `true` guarantees the trace a subsequent [`Runtime::shutdown`]
    /// returns is *maximal*: no recorded receive is missing its handler's
    /// effects, and the run is comparable to a
    /// [`Quiescent`](StopReason::Quiescent) simulator run. Systems with
    /// self-rearming timers (heartbeats, oracle polls) never quiesce;
    /// for them this returns `false` as soon as the run stalls at its
    /// horizon or event budget (or when `timeout` elapses, whichever
    /// comes first).
    pub fn drain(&self, timeout: Duration) -> bool {
        let (reply, done) = channel::unbounded();
        if self
            .to_router
            .send(ToRouter::WaitQuiescent { reply })
            .is_err()
        {
            return false;
        }
        done.recv_timeout(timeout).unwrap_or(false)
    }

    /// Stops all threads and returns the recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if the router thread panicked.
    pub fn shutdown(mut self) -> Trace {
        let _ = self.to_router.send(ToRouter::Shutdown);
        let trace = self
            .router
            .take()
            .expect("router already joined")
            .join()
            .expect("router panicked");
        for node in self.nodes.drain(..) {
            let _ = node.join();
        }
        trace
    }
}

/// A cloneable handle for injecting stimuli into a running [`Runtime`]
/// from arbitrary threads; obtained via [`Runtime::injector`]. Injections
/// land at whatever virtual instant the router's clock has reached when
/// they are handled — scripted injections at exact virtual times belong
/// in [`RuntimeConfig::faults`]. Sends after shutdown are silently
/// dropped.
pub struct Injector<M> {
    to_router: Sender<ToRouter<M>>,
}

impl<M> Clone for Injector<M> {
    fn clone(&self) -> Self {
        Injector {
            to_router: self.to_router.clone(),
        }
    }
}

impl<M> fmt::Debug for Injector<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Injector").finish_non_exhaustive()
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> Injector<M> {
    /// Delivers an external stimulus to `pid`; see
    /// [`Runtime::inject_external`].
    pub fn inject_external(&self, pid: ProcessId, payload: M) {
        let repr = Some(format!("{payload:?}"));
        let _ = self
            .to_router
            .send(ToRouter::InjectExternal { pid, payload, repr });
    }

    /// Crashes `pid` permanently; see [`Runtime::crash`].
    pub fn crash(&self, pid: ProcessId) {
        let _ = self.to_router.send(ToRouter::InjectCrash { pid });
    }
}

fn node_main<M: Clone + fmt::Debug + Send + 'static>(
    pid: ProcessId,
    n: usize,
    mut process: Box<dyn Process<M> + Send>,
    rx: Receiver<NodeEvent<M>>,
    to_router: Sender<ToRouter<M>>,
    seed: u64,
    record_payloads: bool,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Namespace timer ids by process so they are globally unique.
    let mut next_timer: u64 = (pid.index() as u64) << 40;

    // on_start
    {
        let now = VirtualTime::ZERO;
        let mut ctx = Context::new(pid, n, now, &mut rng, &mut next_timer);
        process.on_start(&mut ctx);
        let actions = ctx.take_actions();
        let payload_reprs = render_payloads(&actions, record_payloads);
        let _ = to_router.send(ToRouter::Actions {
            from: pid,
            actions,
            payload_reprs,
        });
    }

    // Every event is answered with exactly one action batch (possibly
    // empty): the router's `outstanding` count — and with it the whole
    // quiescence protocol — depends on it. `Halt` is the one exception:
    // the router never counts it.
    while let Ok(event) = rx.recv() {
        let now = match &event {
            NodeEvent::Message { at, .. }
            | NodeEvent::Timer { at, .. }
            | NodeEvent::External { at, .. }
            | NodeEvent::Batch { at, .. } => *at,
            NodeEvent::Halt => break,
        };
        let mut ctx = Context::new(pid, n, now, &mut rng, &mut next_timer);
        match event {
            NodeEvent::Message { from, msg, .. } => process.on_message(&mut ctx, from, msg),
            NodeEvent::Timer { id, .. } => process.on_timer(&mut ctx, id),
            NodeEvent::External { payload, .. } => process.on_external(&mut ctx, payload),
            // A coalesced flush: run every handler back to back on one
            // context and answer with ONE combined action batch. The
            // actions accumulate in callback order, so the router applies
            // exactly what a one-reply-per-event node would have sent, in
            // the same order.
            NodeEvent::Batch { items, .. } => {
                for item in items {
                    match item {
                        BatchItem::Message { from, msg } => process.on_message(&mut ctx, from, msg),
                        BatchItem::Timer { id } => process.on_timer(&mut ctx, id),
                    }
                }
            }
            NodeEvent::Halt => unreachable!("handled above"),
        }
        let actions = ctx.take_actions();
        let payload_reprs = render_payloads(&actions, record_payloads);
        let _ = to_router.send(ToRouter::Actions {
            from: pid,
            actions,
            payload_reprs,
        });
    }
}

/// `Debug`-renders the payload of each send action, or nothing at all when
/// payload recording is off (the common case pays zero allocations here).
fn render_payloads<M: fmt::Debug>(
    actions: &[Action<M>],
    record_payloads: bool,
) -> Vec<Option<String>> {
    if !record_payloads {
        return Vec::new();
    }
    actions
        .iter()
        .map(|a| match a {
            Action::Send { msg, .. } => Some(format!("{msg:?}")),
            _ => None,
        })
        .collect()
}

struct Parked<M> {
    from: ProcessId,
    msg: MsgId,
    payload: M,
    repr: Option<String>,
    infra: bool,
    sent_at: VirtualTime,
}

struct RouterState<M> {
    n: usize,
    crashed: Vec<bool>,
    failed_flags: Vec<bool>,
    cancelled: CancelledTimers,
    /// Every pending deadline — deliveries, timer fires, plan injections.
    wheel: TimerWheel<Due<M>>,
    /// Node events forwarded whose action replies are still pending.
    outstanding: u64,
    /// Parked [`ToRouter::WaitQuiescent`] callers, answered at the next
    /// quiescence-or-stall observation.
    waiters: Vec<Sender<bool>>,
    max_time: VirtualTime,
    max_events: usize,
    msg_seq: Vec<u64>,
    events: Vec<TraceEvent>,
    stats: SimStats,
    node_txs: Vec<Sender<NodeEvent<M>>>,
    delay: Option<LinkDelay>,
    link: Option<Box<dyn LinkModel + Send>>,
    /// Rng feeding link-model verdicts (seeded from the config; node rngs
    /// are independent, so link draws never perturb process behaviour).
    link_rng: StdRng,
    classify: Option<Classify<M>>,
    measure: Option<Measure<M>>,
    registry: Option<CrashRegistry>,
    obs: Option<ObsHandle>,
    sink: Option<EventSinkHandle>,
    filters: Vec<Option<ReceiveFilter<M>>>,
    /// Per-channel FIFO queues of messages the receiver's filter refused,
    /// indexed `from * n + to`.
    parked: std::collections::HashMap<usize, std::collections::VecDeque<Parked<M>>>,
    /// Per-destination staging buffers for the batching fast path
    /// ([`RuntimeConfig::batch`]); drained by `flush_staged` after every
    /// instant dispatch.
    staged: Vec<Vec<BatchItem<M>>>,
    /// Destinations with staged items, in first-staging order.
    staged_order: Vec<ProcessId>,
}

impl<M: Clone + fmt::Debug + Send + 'static> RouterState<M> {
    fn now(&self) -> VirtualTime {
        self.wheel.now()
    }

    /// Hands a node event to its channel, counting it toward
    /// `outstanding`. All Message/Timer/External/Batch forwards go through
    /// here; `Halt` is uncounted on both sides (nodes never ack it).
    fn forward(&mut self, pid: ProcessId, event: NodeEvent<M>) {
        self.outstanding += 1;
        let _ = self.node_txs[pid.index()].send(event);
    }

    fn record(&mut self, kind: TraceEventKind) {
        let seq = self.events.len();
        let time = self.now();
        self.events.push(TraceEvent { seq, time, kind });
        if let Some(sink) = &self.sink {
            sink.on_event(&self.events[seq]);
        }
    }

    fn push(&mut self, delay_ticks: u64, due: Due<M>) {
        let at = self.now().saturating_add(delay_ticks);
        self.wheel.insert(at, due);
    }

    fn obs_count(&self, node: ProcessId, class: MsgClass, name: &'static str, delta: u64) {
        if let Some(obs) = &self.obs {
            obs.record(ObsEvent::Counter {
                node,
                class,
                name,
                delta,
            });
        }
    }

    fn obs_observe(&self, node: ProcessId, class: MsgClass, name: &'static str, value: u64) {
        if let Some(obs) = &self.obs {
            obs.record(ObsEvent::Observe {
                node,
                class,
                name,
                value,
            });
        }
    }

    fn crash(&mut self, pid: ProcessId) {
        if self.crashed[pid.index()] {
            return;
        }
        self.crashed[pid.index()] = true;
        if let Some(registry) = &self.registry {
            registry.mark(pid);
        }
        self.record(TraceEventKind::Crash { pid });
        self.stats.crashes += 1;
        self.obs_count(pid, MsgClass::None, metric::CRASHES, 1);
        // Copies parked behind the crashed process's receive filter will
        // never be admitted (`drain_parked_to` stops at a crashed target
        // and the filter is frozen): consume them as messages-to-crashed
        // now so `channels_drained()` stays exact. In-wheel deliveries to
        // `pid` are counted one by one by `admit_due`.
        for from in 0..self.n {
            let ch = from * self.n + pid.index();
            if let Some(queue) = self.parked.remove(&ch) {
                let stranded = queue.len() as u64;
                self.stats.messages_to_crashed += stranded;
                if stranded > 0 {
                    self.obs_count(pid, MsgClass::None, metric::TO_CRASHED, stranded);
                }
            }
        }
        let _ = self.node_txs[pid.index()].send(NodeEvent::Halt);
    }

    fn handle_actions(
        &mut self,
        from: ProcessId,
        actions: Vec<Action<M>>,
        reprs: Vec<Option<String>>,
    ) {
        // `reprs` is either empty (payload recording off) or parallel to
        // `actions`; pad with `None` so the two cases unify.
        let mut reprs = reprs.into_iter();
        for action in actions {
            let repr = reprs.next().unwrap_or(None);
            if self.crashed[from.index()] {
                break;
            }
            match action {
                Action::Send { to, msg } => {
                    let seq = self.msg_seq[from.index()];
                    self.msg_seq[from.index()] += 1;
                    let id = MsgId::new(from, seq);
                    let infra = self.classify.as_ref().is_some_and(|f| f(&msg));
                    self.record(TraceEventKind::Send {
                        from,
                        to,
                        msg: id,
                        infra,
                        payload: repr.clone(),
                    });
                    self.stats.messages_sent += 1;
                    let class = MsgClass::from_infra(infra);
                    self.obs_count(from, class, metric::SENT, 1);
                    if let Some(measure) = &self.measure {
                        let cost = measure(&msg);
                        self.stats.wire_bytes += cost;
                        self.obs_count(from, class, metric::WIRE_BYTES, cost);
                    }
                    // The link seam, mirroring the simulator: a LinkModel
                    // verdict (delays in virtual ticks on the wheel) when
                    // one is installed, else the legacy per-link delay fn.
                    let now = self.now();
                    let verdict = match &mut self.link {
                        Some(link) => link.verdict(from, to, now, &mut self.link_rng),
                        None => {
                            let ticks = self.delay.as_ref().map(|f| f(from, to)).unwrap_or(0);
                            LinkVerdict::Deliver(ticks)
                        }
                    };
                    match verdict {
                        LinkVerdict::Deliver(ticks) => {
                            self.push(
                                ticks,
                                Due::Deliver {
                                    from,
                                    to,
                                    msg: id,
                                    payload: msg,
                                    repr,
                                    infra,
                                    sent_at: now,
                                },
                            );
                        }
                        LinkVerdict::Drop => {
                            self.stats.messages_dropped += 1;
                            self.obs_count(from, class, metric::DROPPED, 1);
                        }
                        LinkVerdict::Duplicate(t1, t2) => {
                            self.stats.messages_duplicated += 1;
                            self.obs_count(from, class, metric::DUPLICATED, 1);
                            for ticks in [t1, t2] {
                                self.push(
                                    ticks,
                                    Due::Deliver {
                                        from,
                                        to,
                                        msg: id,
                                        payload: msg.clone(),
                                        repr: repr.clone(),
                                        infra,
                                        sent_at: now,
                                    },
                                );
                            }
                        }
                    }
                }
                Action::SetTimer { id, delay } => {
                    self.push(delay, Due::Fire { pid: from, id });
                }
                Action::CancelTimer { id } => {
                    self.cancelled.cancel(id);
                }
                Action::CrashSelf => self.crash(from),
                Action::DeclareFailed { of } => {
                    let flag = from.index() * self.n + of.index();
                    if !self.failed_flags[flag] {
                        self.failed_flags[flag] = true;
                        self.record(TraceEventKind::Failed { by: from, of });
                        self.stats.detections += 1;
                        self.obs_count(from, MsgClass::None, metric::DETECTIONS, 1);
                    }
                }
                Action::Annotate(note) => self.record(TraceEventKind::Note { pid: from, note }),
                Action::SetReceiveFilter(filter) => {
                    self.filters[from.index()] = filter;
                    self.drain_parked_to(from);
                }
                Action::ModelSend { to, msg } => {
                    self.record(TraceEventKind::Send {
                        from,
                        to,
                        msg,
                        infra: false,
                        payload: None,
                    });
                }
                Action::ModelRecv { from: source, msg } => {
                    self.record(TraceEventKind::Recv {
                        by: from,
                        from: source,
                        msg,
                        infra: false,
                        payload: None,
                    });
                }
            }
        }
    }

    /// Whether `to`'s filter currently refuses `payload`.
    fn refused(&self, to: ProcessId, payload: &M) -> bool {
        self.filters[to.index()]
            .as_ref()
            .is_some_and(|f| !f.accepts(payload))
    }

    /// After `to`'s filter changed, re-deliver parked messages in FIFO
    /// order per channel, stopping at the first message still refused.
    // Not a `while let`: the queue borrow must be dropped before the
    // filter check and the record/send below re-borrow `self`.
    #[allow(clippy::while_let_loop)]
    fn drain_parked_to(&mut self, to: ProcessId) {
        for from in ProcessId::all(self.n) {
            let ch = from.index() * self.n + to.index();
            loop {
                let Some(queue) = self.parked.get_mut(&ch) else {
                    break;
                };
                let Some(head) = queue.front() else { break };
                if self.crashed[to.index()] {
                    break;
                }
                if self.filters[to.index()]
                    .as_ref()
                    .is_some_and(|f| !f.accepts(&head.payload))
                {
                    break;
                }
                let p = self
                    .parked
                    .get_mut(&ch)
                    .expect("queue present")
                    .pop_front()
                    .expect("head");
                self.record(TraceEventKind::Recv {
                    by: to,
                    from: p.from,
                    msg: p.msg,
                    infra: p.infra,
                    payload: p.repr,
                });
                self.stats.messages_delivered += 1;
                let at = self.now();
                let class = MsgClass::from_infra(p.infra);
                self.obs_count(to, class, metric::DELIVERED, 1);
                self.obs_observe(
                    to,
                    class,
                    metric::DELIVERY_LATENCY,
                    at.ticks().saturating_sub(p.sent_at.ticks()),
                );
                self.forward(
                    to,
                    NodeEvent::Message {
                        at,
                        from: p.from,
                        msg: p.payload,
                    },
                );
            }
        }
    }

    /// Applies a scheduled fault-plan entry at the current instant.
    fn apply_plan(&mut self, pid: ProcessId, injection: Injection<M>) {
        match injection {
            Injection::Crash => self.crash(pid),
            Injection::External(payload) => {
                if !self.crashed[pid.index()] {
                    let repr = Some(format!("{payload:?}"));
                    self.record(TraceEventKind::External { pid, payload: repr });
                    let at = self.now();
                    self.forward(pid, NodeEvent::External { at, payload });
                }
            }
        }
    }

    /// Dispatches one due instant's entries, in wheel (deadline, seq)
    /// order. In batch mode Message/Timer admissions are staged per
    /// destination and flushed at the end; plan injections always apply
    /// inline, and since they carry the earliest sequence numbers at
    /// their instant they precede every same-instant admission.
    fn dispatch(&mut self, due: Vec<Due<M>>, batch: bool) {
        for item in due {
            if let Due::Plan { pid, injection } = item {
                self.apply_plan(pid, injection);
                continue;
            }
            if batch {
                self.stage_due(item);
            } else {
                self.fire_due(item);
            }
        }
        if batch {
            self.flush_staged();
        }
    }

    /// Fires one due step immediately (the unbatched path).
    fn fire_due(&mut self, due: Due<M>) {
        if let Some((to, item)) = self.admit_due(due) {
            let at = self.now();
            match item {
                BatchItem::Message { from, msg } => {
                    self.forward(to, NodeEvent::Message { at, from, msg })
                }
                BatchItem::Timer { id } => self.forward(to, NodeEvent::Timer { at, id }),
            }
        }
    }

    /// Stages one due step into the current flush's per-destination batch
    /// (the [`RuntimeConfig::batch`] path); `flush_staged` sends them.
    fn stage_due(&mut self, due: Due<M>) {
        if let Some((to, item)) = self.admit_due(due) {
            if self.staged[to.index()].is_empty() {
                self.staged_order.push(to);
            }
            self.staged[to.index()].push(item);
        }
    }

    /// Shared admission logic for a due step: records the trace event and
    /// stats, and returns the node-event item to hand over — or `None`
    /// when the step dissolves here (crashed target, cancelled timer,
    /// refused/parked message). Admission order IS trace order, so the
    /// batched path records the exact per-message events the unbatched
    /// path would.
    fn admit_due(&mut self, due: Due<M>) -> Option<(ProcessId, BatchItem<M>)> {
        match due {
            Due::Deliver {
                from,
                to,
                msg,
                payload,
                repr,
                infra,
                sent_at,
            } => {
                let class = MsgClass::from_infra(infra);
                if self.crashed[to.index()] {
                    self.stats.messages_to_crashed += 1;
                    self.obs_count(to, class, metric::TO_CRASHED, 1);
                    return None;
                }
                let ch = from.index() * self.n + to.index();
                let channel_blocked = self.parked.get(&ch).is_some_and(|q| !q.is_empty());
                if channel_blocked || self.refused(to, &payload) {
                    // FIFO: once anything on the channel is parked, later
                    // messages queue behind it regardless of the filter.
                    self.parked.entry(ch).or_default().push_back(Parked {
                        from,
                        msg,
                        payload,
                        repr,
                        infra,
                        sent_at,
                    });
                    return None;
                }
                self.record(TraceEventKind::Recv {
                    by: to,
                    from,
                    msg,
                    infra,
                    payload: repr,
                });
                self.stats.messages_delivered += 1;
                self.obs_count(to, class, metric::DELIVERED, 1);
                self.obs_observe(
                    to,
                    class,
                    metric::DELIVERY_LATENCY,
                    self.now().ticks().saturating_sub(sent_at.ticks()),
                );
                Some((to, BatchItem::Message { from, msg: payload }))
            }
            Due::Fire { pid, id } => {
                if self.cancelled.take(id) || self.crashed[pid.index()] {
                    return None;
                }
                self.record(TraceEventKind::TimerFired { pid, timer: id });
                self.stats.timers_fired += 1;
                self.obs_count(pid, MsgClass::None, metric::TIMERS, 1);
                Some((pid, BatchItem::Timer { id }))
            }
            Due::Plan { .. } => unreachable!("plan entries apply inline in dispatch"),
        }
    }

    /// Sends every staged per-destination run: a singleton goes out as the
    /// plain event the unbatched path would send; a longer run goes out as
    /// one [`NodeEvent::Batch`] — one channel send, one node wakeup, one
    /// combined action reply for the whole run.
    fn flush_staged(&mut self) {
        let at = self.now();
        for to in std::mem::take(&mut self.staged_order) {
            let mut items = std::mem::take(&mut self.staged[to.index()]);
            if items.len() == 1 {
                match items.pop().expect("length checked") {
                    BatchItem::Message { from, msg } => {
                        self.forward(to, NodeEvent::Message { at, from, msg })
                    }
                    BatchItem::Timer { id } => self.forward(to, NodeEvent::Timer { at, id }),
                }
            } else if !items.is_empty() {
                self.stats.delivery_batches += 1;
                self.forward(to, NodeEvent::Batch { at, items });
            }
        }
    }

    /// Whether the wheel may keep advancing: the horizon is ahead and the
    /// event budget is not spent.
    fn may_advance_to(&self, d: VirtualTime) -> bool {
        d <= self.max_time && self.events.len() < self.max_events
    }

    /// Answers every parked drain caller with the current judgement.
    fn notify_waiters(&mut self, quiescent: bool) {
        for waiter in self.waiters.drain(..) {
            let _ = waiter.send(quiescent);
        }
    }

    /// Processes one inbox message; returns `true` on shutdown.
    fn handle(&mut self, msg: ToRouter<M>) -> bool {
        match msg {
            ToRouter::Actions {
                from,
                actions,
                payload_reprs,
            } => {
                debug_assert!(self.outstanding > 0);
                self.outstanding -= 1;
                self.handle_actions(from, actions, payload_reprs);
            }
            ToRouter::InjectExternal { pid, payload, repr } => {
                if !self.crashed[pid.index()] {
                    self.record(TraceEventKind::External { pid, payload: repr });
                    let at = self.now();
                    self.forward(pid, NodeEvent::External { at, payload });
                }
            }
            ToRouter::InjectCrash { pid } => {
                self.crash(pid);
            }
            ToRouter::WaitQuiescent { reply } => {
                self.waiters.push(reply);
            }
            ToRouter::Shutdown => return true,
        }
        false
    }
}

fn router_main<M: Clone + fmt::Debug + Send + 'static>(
    n: usize,
    config: RuntimeConfig<M>,
    rx: Receiver<ToRouter<M>>,
    node_txs: Vec<Sender<NodeEvent<M>>>,
) -> Trace {
    let batch = config.batch;
    let mut state = RouterState {
        n,
        crashed: vec![false; n],
        failed_flags: vec![false; n * n],
        cancelled: CancelledTimers::new(),
        wheel: TimerWheel::new(),
        // The n unsolicited on_start replies are in flight from the
        // moment the node threads spawn.
        outstanding: n as u64,
        waiters: Vec::new(),
        max_time: config.max_time,
        max_events: config.max_events,
        msg_seq: vec![0; n],
        events: Vec::new(),
        stats: SimStats::default(),
        node_txs,
        delay: config.delay,
        link: config.link,
        link_rng: StdRng::seed_from_u64(config.seed ^ 0x11AC_C01D),
        classify: config.classify,
        measure: config.measure,
        registry: config.registry,
        obs: config.obs,
        sink: config.sink,
        filters: (0..n).map(|_| None).collect(),
        parked: std::collections::HashMap::new(),
        staged: (0..n).map(|_| Vec::new()).collect(),
        staged_order: Vec::new(),
    };
    // Plan entries go on the wheel before anything else so they hold the
    // earliest insertion seqs at their instants: an injection at tick T is
    // applied before any delivery or timer due at T.
    for (at, pid, injection) in config.faults.into_items() {
        state.wheel.insert(at, Due::Plan { pid, injection });
    }

    // Wall-clock instrumentation is taken only when a telemetry sink is
    // installed: a bare run performs no `Instant` reads at all, and an
    // observed run's reads feed the sink without touching scheduling —
    // virtual time is advanced by the wheel alone either way.
    let timing = state.obs.is_some();
    let router_node = ProcessId::new(0);
    let mut shutdown = false;
    while !shutdown {
        // 1. Drain the inbox without blocking: replies retire outstanding
        // counts and schedule follow-up work; injections apply at the
        // current instant.
        if timing {
            state.obs_observe(
                router_node,
                MsgClass::None,
                metric::QUEUE_DEPTH,
                rx.len() as u64,
            );
        }
        loop {
            match rx.try_recv() {
                Ok(msg) => {
                    if state.handle(msg) {
                        shutdown = true;
                        break;
                    }
                }
                Err(channel::TryRecvError::Empty) => break,
                Err(channel::TryRecvError::Disconnected) => {
                    shutdown = true;
                    break;
                }
            }
        }
        if shutdown {
            break;
        }
        // 2. Dispatch everything due at the current instant (delay-zero
        // follow-ups from the replies just drained land here).
        let due = state.wheel.advance_to(state.wheel.now());
        if !due.is_empty() {
            let t0 = timing.then(std::time::Instant::now);
            state.dispatch(due.into_iter().map(|(_, d)| d).collect(), batch);
            if let Some(t0) = t0 {
                state.obs_count(
                    router_node,
                    MsgClass::None,
                    metric::COMPUTE_NS,
                    t0.elapsed().as_nanos() as u64,
                );
            }
            continue;
        }
        // 3. Replies outstanding: the clock must hold (a pending reply may
        // schedule work at the current instant). Block for one.
        if state.outstanding > 0 {
            let t0 = timing.then(std::time::Instant::now);
            match rx.recv() {
                Ok(msg) => {
                    if let Some(t0) = t0 {
                        state.obs_count(
                            router_node,
                            MsgClass::None,
                            metric::STALL_NS,
                            t0.elapsed().as_nanos() as u64,
                        );
                    }
                    shutdown = state.handle(msg);
                }
                Err(_) => shutdown = true,
            }
            continue;
        }
        // 4. Idle at this instant: advance the clock to the next due
        // deadline, or conclude quiescence/stall and park.
        match state.wheel.next_deadline() {
            Some(d) if state.may_advance_to(d) => {
                if timing {
                    state.obs_observe(
                        router_node,
                        MsgClass::None,
                        metric::WHEEL_OCCUPANCY,
                        state.wheel.len() as u64,
                    );
                }
                let due = state.wheel.advance_to(d);
                let t0 = timing.then(std::time::Instant::now);
                state.dispatch(due.into_iter().map(|(_, item)| item).collect(), batch);
                if let Some(t0) = t0 {
                    state.obs_count(
                        router_node,
                        MsgClass::None,
                        metric::COMPUTE_NS,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
            }
            next => {
                // Genuinely quiescent (nothing scheduled at all) or
                // stalled (deadlines beyond the horizon / event budget
                // spent). Either way the run cannot progress on its own:
                // answer drain callers and park until an injection or
                // shutdown arrives.
                state.notify_waiters(next.is_none());
                let t0 = timing.then(std::time::Instant::now);
                match rx.recv() {
                    Ok(msg) => {
                        if let Some(t0) = t0 {
                            state.obs_count(
                                router_node,
                                MsgClass::None,
                                metric::STALL_NS,
                                t0.elapsed().as_nanos() as u64,
                            );
                        }
                        shutdown = state.handle(msg);
                    }
                    Err(_) => shutdown = true,
                }
            }
        }
    }
    for tx in &state.node_txs {
        let _ = tx.send(NodeEvent::Halt);
    }
    let end = state.now();
    let all_crashed = state.crashed.iter().all(|&c| c);
    let stop = if all_crashed {
        StopReason::AllCrashed
    } else if state.wheel.is_empty() && state.outstanding == 0 {
        StopReason::Quiescent
    } else if state.events.len() >= state.max_events {
        StopReason::MaxEvents
    } else {
        StopReason::MaxTime
    };
    Trace::from_parts(n, state.events, stop, end, state.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping,
        Pong,
    }

    struct PingPong {
        is_pinger: bool,
        rounds: u32,
    }

    impl Process<Msg> for PingPong {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if self.is_pinger {
                ctx.send(ProcessId::new(1), Msg::Ping);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
            match msg {
                Msg::Ping => ctx.send(from, Msg::Pong),
                Msg::Pong => {
                    self.rounds += 1;
                    if self.rounds < 5 {
                        ctx.send(from, Msg::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |pid| {
            Box::new(PingPong {
                is_pinger: pid.index() == 0,
                rounds: 0,
            })
        });
        assert!(rt.drain(Duration::from_secs(5)), "ping-pong must quiesce");
        let trace = rt.shutdown();
        // 5 pings and 5 pongs.
        assert_eq!(
            trace.stats().messages_sent,
            10,
            "{}",
            trace.to_pretty_string()
        );
        assert_eq!(trace.stats().messages_delivered, 10);
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
    }

    #[test]
    fn crash_stops_deliveries() {
        struct Chatter;
        impl Process<Msg> for Chatter {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(10);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: TimerId) {
                ctx.broadcast(Msg::Ping, false);
                ctx.set_timer(10);
            }
        }
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |_| Box::new(Chatter));
        rt.run_for(Duration::from_millis(50));
        rt.crash(ProcessId::new(1));
        rt.run_for(Duration::from_millis(100));
        let trace = rt.shutdown();
        let crash_seq = trace
            .events()
            .iter()
            .find_map(|e| match e.kind {
                TraceEventKind::Crash { pid } if pid == ProcessId::new(1) => Some(e.seq),
                _ => None,
            })
            .expect("crash recorded");
        for e in trace.events() {
            if e.seq > crash_seq {
                if let TraceEventKind::Recv { by, .. } = e.kind {
                    assert_ne!(by, ProcessId::new(1), "delivery to crashed process");
                }
            }
        }
    }

    #[test]
    fn receive_filter_parks_and_drains_in_fifo_order() {
        use crate::process::ReceiveFilter;

        // p1 refuses odd payloads until it sees 100 from p2; p0's odd
        // message parks its whole channel (FIFO), and everything drains in
        // order once the filter lifts.
        struct Sender(u32);
        impl Process<u32> for Sender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if self.0 == 0 {
                    ctx.send(ProcessId::new(1), 2);
                    ctx.send(ProcessId::new(1), 3); // parked
                    ctx.send(ProcessId::new(1), 6); // queues behind 3
                } else if self.0 == 2 {
                    ctx.set_timer(150); // fires long after p0's sends
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: TimerId) {
                ctx.send(ProcessId::new(1), 100);
            }
        }
        struct Picky;
        impl Process<u32> for Picky {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_receive_filter(Some(ReceiveFilter::new(|m: &u32| m.is_multiple_of(2))));
            }
            fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
                if msg == 100 {
                    ctx.set_receive_filter(None);
                }
            }
        }
        let rt = Runtime::spawn(3, RuntimeConfig::default(), |pid| {
            if pid.index() == 1 {
                Box::new(Picky) as Box<dyn Process<u32> + Send>
            } else {
                Box::new(Sender(pid.index() as u32))
            }
        });
        assert!(rt.drain(Duration::from_secs(5)), "must quiesce");
        let trace = rt.shutdown();
        // All four messages delivered; p0's arrive at p1 in FIFO order.
        assert_eq!(
            trace.stats().messages_delivered,
            4,
            "{}",
            trace.to_pretty_string()
        );
        let from_p0: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { by, from, msg, .. }
                    if by == ProcessId::new(1) && from == ProcessId::new(0) =>
                {
                    Some(msg.seq())
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            from_p0,
            vec![0, 1, 2],
            "FIFO preserved through router parking"
        );
    }

    #[test]
    fn parked_messages_to_a_crashed_receiver_count_as_consumed() {
        use crate::process::ReceiveFilter;
        // p1 refuses everything, so p0's two messages sit in the router's
        // parked map; the fault plan then crashes p1. The parked copies
        // must be consumed as messages_to_crashed (the filter is frozen
        // forever) so the finished run reports its channels drained.
        struct S(usize);
        impl Process<u32> for S {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if self.0 == 0 {
                    ctx.send(ProcessId::new(1), 7);
                    ctx.send(ProcessId::new(1), 8);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        struct Refuser;
        impl Process<u32> for Refuser {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_receive_filter(Some(ReceiveFilter::new(|_: &u32| false)));
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let config: RuntimeConfig<u32> = RuntimeConfig {
            faults: FaultPlan::new().crash_at(ProcessId::new(1), VirtualTime::from_ticks(20)),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            if pid.index() == 0 {
                Box::new(S(0)) as Box<dyn Process<u32> + Send>
            } else {
                Box::new(Refuser)
            }
        });
        assert!(rt.drain(Duration::from_secs(5)), "must quiesce");
        let trace = rt.shutdown();
        assert_eq!(trace.stats().messages_sent, 2);
        assert_eq!(trace.stats().messages_delivered, 0);
        assert_eq!(
            trace.stats().messages_to_crashed,
            2,
            "{}",
            trace.to_pretty_string()
        );
        assert!(trace.channels_drained(), "{}", trace.to_pretty_string());
    }

    #[test]
    fn duplicate_copies_outlive_a_partition_cut_after_the_verdict() {
        use crate::latency::FixedLatency;
        use crate::link::{FaultyLink, PartitionSchedule};
        // The router consults the link once per send (tick 0); the link
        // is severed from tick 1 forever. Both duplicate copies are
        // already in flight on the wheel and must deliver across the cut,
        // leaving the accounting balanced.
        struct S(usize);
        impl Process<u32> for S {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if self.0 == 0 {
                    ctx.send(ProcessId::new(1), 7);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let link = FaultyLink::new(FixedLatency(30)).duplicate(1.0).partitions(
            PartitionSchedule::new().split(
                VirtualTime::from_ticks(1),
                VirtualTime::MAX,
                &[ProcessId::new(0)],
            ),
        );
        let config: RuntimeConfig<u32> = RuntimeConfig {
            link: Some(Box::new(link)),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| Box::new(S(pid.index())));
        assert!(rt.drain(Duration::from_secs(5)), "must quiesce");
        let trace = rt.shutdown();
        assert_eq!(trace.stats().messages_sent, 1);
        assert_eq!(trace.stats().messages_duplicated, 1);
        assert_eq!(
            trace.stats().messages_delivered,
            2,
            "{}",
            trace.to_pretty_string()
        );
        assert!(trace.channels_drained());
        for e in trace.events() {
            if matches!(e.kind, TraceEventKind::Recv { .. }) {
                assert!(e.time >= VirtualTime::from_ticks(1), "{e}");
            }
        }
    }

    #[test]
    fn drain_detects_quiescence_and_timers_prevent_it() {
        // Ping-pong quiesces after 5 rounds: drain must see it without
        // needing the full window, and the resulting trace is coherent
        // (every delivered message's effects included).
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |pid| {
            Box::new(PingPong {
                is_pinger: pid.index() == 0,
                rounds: 0,
            })
        });
        assert!(rt.drain(Duration::from_secs(5)), "ping-pong must quiesce");
        let trace = rt.shutdown();
        assert_eq!(trace.stats().messages_sent, 10);
        assert_eq!(trace.stats().messages_delivered, 10);
        assert!(trace.channels_drained());

        // A self-rearming timer never quiesces: drain must say so. With a
        // small event budget the run stalls quickly and drain answers
        // false well before its timeout.
        struct Ticker;
        impl Process<Msg> for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(10);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: TimerId) {
                ctx.set_timer(10);
            }
        }
        let config = RuntimeConfig {
            max_events: 500,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(1, config, |_| Box::new(Ticker));
        assert!(!rt.drain(Duration::from_secs(5)));
        let trace = rt.shutdown();
        assert_eq!(trace.stop_reason(), StopReason::MaxEvents);
    }

    #[test]
    fn horizon_caps_virtual_time() {
        // A perpetual ticker under a virtual-time horizon: the run stalls
        // exactly at the last firing within the horizon and the clock
        // never passes it.
        struct Ticker;
        impl Process<Msg> for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(10);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: TimerId) {
                ctx.set_timer(10);
            }
        }
        let config = RuntimeConfig {
            max_time: VirtualTime::from_ticks(95),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(1, config, |_| Box::new(Ticker));
        assert!(!rt.drain(Duration::from_secs(5)), "ticker never quiesces");
        let trace = rt.shutdown();
        assert_eq!(trace.stop_reason(), StopReason::MaxTime);
        assert_eq!(trace.stats().timers_fired, 9, "fires at 10, 20, ..., 90");
        assert!(trace.end_time() <= VirtualTime::from_ticks(95));
    }

    #[test]
    fn router_marks_crashes_in_the_shared_registry() {
        let registry = CrashRegistry::new(2);
        let config = RuntimeConfig {
            registry: Some(registry.clone()),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            Box::new(PingPong {
                is_pinger: pid.index() == 0,
                rounds: 0,
            })
        });
        assert!(!registry.is_crashed(ProcessId::new(1)));
        rt.crash(ProcessId::new(1));
        rt.run_for(Duration::from_millis(100));
        let trace = rt.shutdown();
        assert!(trace.crashed().contains(&ProcessId::new(1)));
        assert!(registry.is_crashed(ProcessId::new(1)));
        assert_eq!(registry.iter_crashed().count(), 1);
    }

    #[test]
    fn fault_plan_entries_fire_on_the_wheel() {
        // A scripted crash at tick 25 lands at virtual 25 exactly, between
        // the tick-20 and tick-30 broadcasts — deterministically, with no
        // wall clock involved.
        struct Chatter;
        impl Process<Msg> for Chatter {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(10);
            }
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: TimerId) {
                ctx.broadcast(Msg::Ping, false);
                ctx.set_timer(10);
            }
        }
        let config: RuntimeConfig<Msg> = RuntimeConfig {
            faults: FaultPlan::new().crash_at(ProcessId::new(1), VirtualTime::from_ticks(25)),
            max_time: VirtualTime::from_ticks(60),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |_| Box::new(Chatter));
        assert!(!rt.drain(Duration::from_secs(5)), "chatter never quiesces");
        let trace = rt.shutdown();
        let crash = trace
            .events()
            .iter()
            .find(|e| matches!(e.kind, TraceEventKind::Crash { pid } if pid == ProcessId::new(1)))
            .expect("crash recorded");
        assert_eq!(crash.time, VirtualTime::from_ticks(25));
        // No event at tick 26+ involves the victim; in particular nothing
        // is delivered to it and it fires no timers after the crash.
        for e in trace.events() {
            if e.time > VirtualTime::from_ticks(25) {
                match e.kind {
                    TraceEventKind::Recv { by, .. } => assert_ne!(by, ProcessId::new(1)),
                    TraceEventKind::TimerFired { pid, .. } => assert_ne!(pid, ProcessId::new(1)),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn batched_router_coalesces_and_preserves_fifo() {
        // A 30-message flood behind a 10-tick link delay: all 30 come due
        // at the same instant, so the batching router must coalesce them
        // into (at least one) NodeEvent batch while keeping per-message
        // trace events and strict FIFO delivery order.
        struct Flood;
        impl Process<u32> for Flood {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for k in 0..30u32 {
                    ctx.send(ProcessId::new(1), k);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        struct Quiet;
        impl Process<u32> for Quiet {
            fn on_start(&mut self, _: &mut Context<'_, u32>) {}
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let config = RuntimeConfig {
            batch: true,
            delay: Some(Box::new(|_, _| 10)),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            if pid.index() == 0 {
                Box::new(Flood) as Box<dyn Process<u32> + Send>
            } else {
                Box::new(Quiet)
            }
        });
        assert!(rt.drain(Duration::from_secs(5)), "flood must quiesce");
        let trace = rt.shutdown();
        assert_eq!(trace.stats().messages_delivered, 30);
        let seqs: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { by, msg, .. } if by == ProcessId::new(1) => Some(msg.seq()),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, (0..30).collect::<Vec<u64>>(), "FIFO through batching");
        assert!(
            trace.stats().delivery_batches >= 1,
            "a same-instant flood must actually coalesce; stats: {:?}",
            trace.stats()
        );
    }

    #[test]
    fn batched_ping_pong_and_drain_handshake() {
        // Request/response traffic under batching: the combined action
        // replies must keep the outstanding count matched so the drain
        // handshake still detects quiescence.
        let config = RuntimeConfig {
            batch: true,
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            Box::new(PingPong {
                is_pinger: pid.index() == 0,
                rounds: 0,
            })
        });
        assert!(rt.drain(Duration::from_secs(5)), "ping-pong must quiesce");
        let trace = rt.shutdown();
        assert_eq!(trace.stats().messages_sent, 10);
        assert_eq!(trace.stats().messages_delivered, 10);
    }

    #[test]
    fn router_link_model_drops_and_duplicates() {
        use crate::link::{FnLink, LinkVerdict};
        use rand::rngs::StdRng;

        // Scripted verdicts, mirroring the sim test: drop the 1st send,
        // duplicate the 2nd, deliver the rest.
        struct Flood;
        impl Process<u32> for Flood {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                for k in 0..3u32 {
                    ctx.send(ProcessId::new(1), k);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        struct Quiet;
        impl Process<u32> for Quiet {
            fn on_start(&mut self, _: &mut Context<'_, u32>) {}
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let mut k = 0u32;
        let config = RuntimeConfig {
            link: Some(Box::new(FnLink(move |_, _, _, _: &mut StdRng| {
                k += 1;
                match k {
                    1 => LinkVerdict::Drop,
                    2 => LinkVerdict::Duplicate(1, 2),
                    _ => LinkVerdict::Deliver(1),
                }
            }))),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            if pid.index() == 0 {
                Box::new(Flood) as Box<dyn Process<u32> + Send>
            } else {
                Box::new(Quiet)
            }
        });
        assert!(rt.drain(Duration::from_secs(5)), "flood must settle");
        let trace = rt.shutdown();
        let stats = trace.stats();
        assert_eq!(stats.messages_sent, 3);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_duplicated, 1);
        assert_eq!(stats.messages_delivered, 3, "{}", trace.to_pretty_string());
        assert!(trace.channels_drained());
    }

    #[test]
    fn external_injection_reaches_process() {
        struct Reactor;
        impl Process<Msg> for Reactor {
            fn on_start(&mut self, _: &mut Context<'_, Msg>) {}
            fn on_message(&mut self, _: &mut Context<'_, Msg>, _: ProcessId, _: Msg) {}
            fn on_external(&mut self, ctx: &mut Context<'_, Msg>, _: Msg) {
                ctx.declare_failed(ProcessId::new(1));
            }
        }
        let rt = Runtime::spawn(2, RuntimeConfig::default(), |_| Box::new(Reactor));
        rt.inject_external(ProcessId::new(0), Msg::Ping);
        rt.run_for(Duration::from_millis(100));
        let trace = rt.shutdown();
        assert_eq!(
            trace.detections(),
            vec![(ProcessId::new(0), ProcessId::new(1))]
        );
    }

    #[test]
    fn plan_external_precedes_same_instant_deliveries() {
        // p0 sends a message that arrives at p1 at tick 5; the plan also
        // injects an external at p1 at tick 5. The injection must be
        // observed first (earliest wheel seq at the instant): p1 reacts to
        // the external before handling the delivery.
        #[derive(Clone, Debug)]
        enum E {
            Data,
            Mark,
        }
        struct Src;
        impl Process<E> for Src {
            fn on_start(&mut self, ctx: &mut Context<'_, E>) {
                ctx.send(ProcessId::new(1), E::Data);
            }
            fn on_message(&mut self, _: &mut Context<'_, E>, _: ProcessId, _: E) {}
        }
        struct Dst {
            marked: bool,
        }
        impl Process<E> for Dst {
            fn on_start(&mut self, _: &mut Context<'_, E>) {}
            fn on_message(&mut self, ctx: &mut Context<'_, E>, _: ProcessId, _: E) {
                assert!(self.marked, "external must land before the delivery");
                ctx.annotate(crate::Note::key_val("order", "data-after-mark"));
            }
            fn on_external(&mut self, _: &mut Context<'_, E>, _: E) {
                self.marked = true;
            }
        }
        let config: RuntimeConfig<E> = RuntimeConfig {
            delay: Some(Box::new(|_, _| 5)),
            faults: FaultPlan::new().external_at(
                ProcessId::new(1),
                VirtualTime::from_ticks(5),
                E::Mark,
            ),
            ..RuntimeConfig::default()
        };
        let rt = Runtime::spawn(2, config, |pid| {
            if pid.index() == 0 {
                Box::new(Src) as Box<dyn Process<E> + Send>
            } else {
                Box::new(Dst { marked: false })
            }
        });
        assert!(rt.drain(Duration::from_secs(5)), "must quiesce");
        let trace = rt.shutdown();
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Note { .. })));
    }
}
