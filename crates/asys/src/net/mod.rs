//! Event-driven threaded runtime: the same [`Process`](crate::Process)
//! automata over real OS threads, on a virtual clock.
//!
//! The simulator in [`Sim`](crate::Sim) explores adversarial schedules
//! deterministically; this module runs the *identical* protocol code on
//! real concurrency — one thread per process, crossbeam channels as the
//! FIFO links. A central router thread serializes all effects, which both
//! preserves per-channel FIFO order (the property the paper's sFS2d
//! argument depends on) and lets the runtime record a single coherent
//! [`Trace`](crate::Trace).
//!
//! Time is logical, not wall-clock: the router owns a hierarchical
//! [`TimerWheel`](crate::TimerWheel) holding every pending deadline
//! (message deliveries, timer fires, scheduled fault injections) and
//! advances its virtual clock straight to the next due instant whenever
//! nothing is in flight. All events due at one instant dispatch
//! concurrently across node threads; the clock never moves while a
//! handler's action reply is outstanding. A run's wall cost is therefore
//! proportional to the events it executes, not the virtual span it
//! covers — the property experiment E11 benchmarks.
//!
//! The repro substitutes threads + crossbeam for the async-executor
//! plumbing a modern implementation might use (tokio is outside the
//! allowed dependency set); the protocol only needs reliable FIFO
//! point-to-point channels and timers, which this provides.
//!
//! # Examples
//!
//! ```
//! use sfs_asys::net::{Runtime, RuntimeConfig};
//! use sfs_asys::{Context, Process, ProcessId};
//! use std::time::Duration;
//!
//! #[derive(Clone, Debug)]
//! struct Hello;
//!
//! struct Greeter;
//! impl Process<Hello> for Greeter {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Hello>) {
//!         ctx.broadcast(Hello, false);
//!     }
//!     fn on_message(&mut self, _: &mut Context<'_, Hello>, _: ProcessId, _: Hello) {}
//! }
//!
//! let rt = Runtime::spawn(3, RuntimeConfig::default(), |_| Box::new(Greeter));
//! assert!(rt.drain(Duration::from_secs(5)), "greeting quiesces");
//! let trace = rt.shutdown();
//! assert_eq!(trace.stats().messages_sent, 6);
//! ```

mod router;

pub use router::{Injector, Measure, Runtime, RuntimeConfig};
