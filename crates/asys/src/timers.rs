//! Dense cancellation flags for one-shot timers.
//!
//! Both engines allocate timer ids from counters — globally sequential in
//! the simulator, per-process-namespaced (`pid << 40 | seq`) in the
//! threaded runtime — so cancellation state fits a per-lane bitmap instead
//! of a `HashSet<TimerId>`. Marking and consuming a cancellation are then
//! two or three array reads with no hashing, which matters in the
//! simulator's run loop where every timer firing used to pay a hash probe.

use crate::id::TimerId;

/// Bits of a raw timer id below the lane namespace.
const LANE_SHIFT: u32 = 40;
const OFFSET_MASK: u64 = (1 << LANE_SHIFT) - 1;

/// Cancellation bitmap, lane-indexed by the timer id's namespace bits.
#[derive(Debug, Default)]
pub(crate) struct CancelledTimers {
    /// `lanes[lane][word]` holds 64 cancellation bits; lanes and words grow
    /// on demand, so memory tracks the highest cancelled id per lane.
    lanes: Vec<Vec<u64>>,
}

impl CancelledTimers {
    /// An empty set.
    pub(crate) fn new() -> Self {
        CancelledTimers { lanes: Vec::new() }
    }

    fn split(id: TimerId) -> (usize, usize, u64) {
        let raw = id.raw();
        let lane = (raw >> LANE_SHIFT) as usize;
        let offset = (raw & OFFSET_MASK) as usize;
        (lane, offset >> 6, 1u64 << (offset & 63))
    }

    /// Marks `id` as cancelled. Idempotent.
    pub(crate) fn cancel(&mut self, id: TimerId) {
        let (lane, word, bit) = Self::split(id);
        if self.lanes.len() <= lane {
            self.lanes.resize_with(lane + 1, Vec::new);
        }
        let words = &mut self.lanes[lane];
        if words.len() <= word {
            words.resize(word + 1, 0);
        }
        words[word] |= bit;
    }

    /// Whether `id` is currently marked cancelled, without consuming the
    /// flag. Used by the scheduled run loop to annotate enabled timer
    /// steps as no-ops before a strategy chooses among them.
    pub(crate) fn is_cancelled(&self, id: TimerId) -> bool {
        let (lane, word, bit) = Self::split(id);
        self.lanes
            .get(lane)
            .and_then(|words| words.get(word))
            .is_some_and(|w| *w & bit != 0)
    }

    /// Consumes the cancellation of `id`: returns whether it was
    /// cancelled, clearing the flag (so each id answers `true` at most
    /// once, matching `HashSet::remove`).
    pub(crate) fn take(&mut self, id: TimerId) -> bool {
        let (lane, word, bit) = Self::split(id);
        match self
            .lanes
            .get_mut(lane)
            .and_then(|words| words.get_mut(word))
        {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(raw: u64) -> TimerId {
        TimerId::new(raw)
    }

    #[test]
    fn cancel_then_take_once() {
        let mut c = CancelledTimers::new();
        assert!(!c.take(t(3)));
        c.cancel(t(3));
        assert!(c.take(t(3)));
        assert!(!c.take(t(3)), "take consumes the flag");
    }

    #[test]
    fn lanes_are_independent() {
        let mut c = CancelledTimers::new();
        let a = t(5);
        let b = t((2u64 << 40) | 5); // same offset, different lane
        c.cancel(a);
        assert!(!c.take(b));
        assert!(c.take(a));
    }

    #[test]
    fn high_offsets_grow_words() {
        let mut c = CancelledTimers::new();
        c.cancel(t(1_000_003));
        assert!(c.take(t(1_000_003)));
        assert!(!c.take(t(1_000_002)));
    }

    #[test]
    fn cancel_is_idempotent() {
        let mut c = CancelledTimers::new();
        c.cancel(t(9));
        c.cancel(t(9));
        assert!(c.take(t(9)));
        assert!(!c.take(t(9)));
    }
}
