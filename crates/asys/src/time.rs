//! Virtual time for the deterministic simulator.
//!
//! The paper's system is asynchronous: there are no physical clocks and
//! message delay is unbounded. Virtual time is *not* visible to processes in
//! any way that would violate asynchrony — it only sequences simulator
//! events (delivery and timer firings). Timeouts expressed in virtual time
//! model the paper's "mechanism provided by the underlying system" for FS1;
//! they may be arbitrarily wrong relative to actual delays, which is exactly
//! the source of erroneous detections the paper studies.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in abstract ticks.
///
/// # Examples
///
/// ```
/// use sfs_asys::VirtualTime;
///
/// let t = VirtualTime::ZERO + 5;
/// assert_eq!(t.ticks(), 5);
/// assert!(t > VirtualTime::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The origin of virtual time.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// The maximum representable virtual time; used as an "effectively
    /// never" delivery horizon by adversarial latency models.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Creates a time from raw ticks.
    pub const fn from_ticks(ticks: u64) -> Self {
        VirtualTime(ticks)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick delta.
    pub const fn saturating_add(self, delta: u64) -> Self {
        VirtualTime(self.0.saturating_add(delta))
    }

    /// Ticks elapsed since `earlier`, or zero if `earlier` is later.
    pub const fn since(self, earlier: VirtualTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for VirtualTime {
    type Output = VirtualTime;

    fn add(self, delta: u64) -> VirtualTime {
        VirtualTime(self.0.saturating_add(delta))
    }
}

impl AddAssign<u64> for VirtualTime {
    fn add_assign(&mut self, delta: u64) {
        self.0 = self.0.saturating_add(delta);
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = u64;

    fn sub(self, rhs: VirtualTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<u64> for VirtualTime {
    fn from(ticks: u64) -> Self {
        VirtualTime(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(VirtualTime::MAX + 1, VirtualTime::MAX);
        assert_eq!(VirtualTime::ZERO.since(VirtualTime::from_ticks(5)), 0);
        assert_eq!(VirtualTime::from_ticks(7) - VirtualTime::from_ticks(3), 4);
        assert_eq!(VirtualTime::from_ticks(3) - VirtualTime::from_ticks(7), 0);
    }

    #[test]
    fn ordering_follows_ticks() {
        assert!(VirtualTime::from_ticks(1) < VirtualTime::from_ticks(2));
        assert_eq!(VirtualTime::from_ticks(4), VirtualTime::ZERO + 4);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(VirtualTime::from_ticks(12).to_string(), "@12");
    }
}
