//! Pluggable schedulers: the `Strategy` seam of the simulator.
//!
//! The paper's theorems quantify over *all* runs of an asynchronous
//! system: FS1 and sFS2a–d (Figure 1) must hold on every schedule the
//! asynchrony adversary can produce, and the lower bounds (Theorems 6–7)
//! are exactly statements about what some adversarial schedule can force.
//! The default simulator realizes one schedule per seed — delivery order
//! follows virtual time, with per-message latency drawn from a
//! [`LatencyModel`](crate::latency::LatencyModel). That is ideal for
//! statistical sweeps (E1–E8) but can never *certify* the absence of a
//! violation.
//!
//! This module turns the scheduler into an explicit choice point. At each
//! step of a scheduled run, the engine materializes the set of **enabled
//! steps** — deliverable channel heads, armed timers, pending fault
//! injections — and asks a [`Strategy`] to pick one. The built-in
//! [`TimeOrderedStrategy`] reproduces the default engine's schedule
//! byte-for-byte (a regression test holds it to that); systematic
//! explorers (the `sfs-explore` crate) substitute strategies that
//! enumerate or randomize the choice sequence instead.
//!
//! Every scheduled run records its choices as a [`ChoiceTrace`]; feeding
//! the same trace back through a replay strategy reproduces the run
//! exactly, which is what makes explored counterexamples replayable.
//!
//! # Examples
//!
//! Record a randomly-scheduled run, then replay it byte-identically:
//!
//! ```
//! use sfs_asys::{Context, Process, ProcessId, RandomStrategy, ReplayStrategy, Sim};
//!
//! struct Echo;
//! impl Process<u8> for Echo {
//!     fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
//!         ctx.broadcast(0, false);
//!     }
//!     fn on_message(&mut self, _: &mut Context<'_, u8>, _: ProcessId, _: u8) {}
//! }
//!
//! let build = || Sim::<u8>::builder(3).build(|_| Box::new(Echo));
//! let mut sim = build();
//! sim.set_strategy(RandomStrategy::new(42));
//! let (trace, log) = sim.run_scheduled();
//!
//! let mut again = build();
//! again.set_strategy(ReplayStrategy::new(log.choices()));
//! assert_eq!(again.run_scheduled().0, trace);
//! ```

use crate::id::{ProcessId, TimerId};
use crate::time::VirtualTime;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// What kind of pending step a scheduler may execute next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StepKind {
    /// Deliver (or attempt to deliver) the head of channel `C_{from,to}`.
    Deliver {
        /// Channel source.
        from: ProcessId,
        /// Channel destination — the process whose state the step touches.
        to: ProcessId,
    },
    /// Fire an armed timer of `pid`.
    Timer {
        /// Owner of the timer.
        pid: ProcessId,
        /// The timer.
        timer: TimerId,
    },
    /// Deliver a [`FaultPlan`](crate::fault::FaultPlan) injection (a crash
    /// or an external stimulus) to `pid`.
    Inject {
        /// Target of the injection.
        pid: ProcessId,
    },
}

impl StepKind {
    /// The process whose local state the step can change: the receiver of
    /// a delivery, the owner of a timer, the target of an injection.
    ///
    /// Two enabled steps with distinct loci commute — executing them in
    /// either order yields the same global state — because a step may
    /// mutate only its locus process plus channels *out of* that process
    /// (appends to FIFO tails, which never affect the other step's
    /// enabledness or effect). This is the independence relation the
    /// `sfs-explore` crate's partial-order pruning is built on.
    pub fn locus(&self) -> ProcessId {
        match *self {
            StepKind::Deliver { to, .. } => to,
            StepKind::Timer { pid, .. } => pid,
            StepKind::Inject { pid } => pid,
        }
    }
}

/// One schedulable step, as presented to a [`Strategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnabledStep {
    /// What the step would do.
    pub kind: StepKind,
    /// The earliest virtual time the default engine would execute this
    /// step at (its latency-model delivery time, timer deadline, or
    /// injection time). Adversarial strategies are free to ignore it: an
    /// asynchronous adversary may delay any step arbitrarily.
    pub at: VirtualTime,
    /// Engine-wide creation sequence number. Unique per step, and — the
    /// engine being deterministic — identical across runs that share the
    /// choice prefix creating the step, so it serves as a stable step
    /// identity for explorers.
    pub order: u64,
    /// Whether executing the step can neither run process code nor record
    /// a trace event: a delivery to an already-crashed process, a timer of
    /// a crashed process, a cancelled timer, or an injection into a
    /// crashed process. Such steps commute with every other step, so an
    /// explorer may execute them immediately without branching.
    pub noop: bool,
}

/// The scheduler's choice sequence of one run: for each step, the index
/// that was chosen into that step's enabled list. Together with the run's
/// construction parameters this replays the run exactly.
pub type ChoiceTrace = Vec<u32>;

/// One recorded scheduling decision: the enabled set offered and the
/// index chosen from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepLog {
    /// The enabled steps at this point, in canonical (creation-order)
    /// order.
    pub enabled: Vec<EnabledStep>,
    /// Index into `enabled` of the executed step.
    pub chosen: u32,
}

/// The full scheduling record of one run: every enabled set and choice.
///
/// Produced by [`Sim::run_scheduled`](crate::sim::Sim::run_scheduled);
/// consumed by the `sfs-explore` crate's depth-first search, which uses
/// the per-step enabled lists as the branching structure of the schedule
/// tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleLog {
    /// The decisions, in execution order.
    pub steps: Vec<StepLog>,
}

impl ScheduleLog {
    /// The bare choice sequence, sufficient for replay.
    pub fn choices(&self) -> ChoiceTrace {
        self.steps.iter().map(|s| s.chosen).collect()
    }

    /// Number of scheduling decisions taken.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no decision was taken.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The executed step of decision `depth`, if within the log.
    pub fn executed(&self, depth: usize) -> Option<&EnabledStep> {
        self.steps.get(depth).map(|s| &s.enabled[s.chosen as usize])
    }

    /// Positions whose decision was **forced** — only one step was
    /// enabled, so the "choice" carries no information. Shrinkers skip
    /// these: deleting or altering them cannot change the run.
    pub fn forced_positions(&self) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (s.enabled.len() == 1).then_some(i))
            .collect()
    }
}

/// Read-only surgery over [`ChoiceTrace`]s, producing shrink *candidates*.
///
/// These helpers never touch a live run: they derive new choice sequences
/// from a recorded one, and every candidate must be **re-validated by
/// replay** before it means anything — deleting a decision changes which
/// steps are enabled downstream, so the surviving suffix is a guess the
/// replay either confirms or repairs (see `sfs-explore`'s tolerant
/// replay). The `sfs-explore` crate's counterexample shrinker is the
/// intended consumer.
pub mod surgery {
    use super::ChoiceTrace;

    /// The first `len` choices: the candidate "the violation already
    /// happened by decision `len`".
    pub fn truncated(choices: &[u32], len: usize) -> ChoiceTrace {
        choices[..len.min(choices.len())].to_vec()
    }

    /// The trace with `range` spliced out: the delta-debugging deletion
    /// candidate. Out-of-bounds ranges are clamped.
    pub fn without_range(choices: &[u32], range: std::ops::Range<usize>) -> ChoiceTrace {
        let start = range.start.min(choices.len());
        let end = range.end.clamp(start, choices.len());
        let mut out = Vec::with_capacity(choices.len() - (end - start));
        out.extend_from_slice(&choices[..start]);
        out.extend_from_slice(&choices[end..]);
        out
    }

    /// The trace with position `at` replaced by `choice`: the
    /// canonicalization candidate (shrinkers try `0`, the first enabled
    /// step, which is also what replay past the end of a trace picks).
    pub fn with_choice(choices: &[u32], at: usize, choice: u32) -> ChoiceTrace {
        let mut out = choices.to_vec();
        if let Some(slot) = out.get_mut(at) {
            *slot = choice;
        }
        out
    }
}

/// A scheduling policy: picks the next step to execute among the enabled
/// ones.
///
/// Implementations must return an index `< enabled.len()`; the engine
/// only calls [`Strategy::choose`] with a non-empty list. Determinism of
/// the overall run is the strategy's responsibility — the built-in
/// strategies are deterministic (given their seed), which the experiment
/// infrastructure relies on.
pub trait Strategy {
    /// Chooses the index of the step to execute next.
    fn choose(&mut self, enabled: &[EnabledStep]) -> usize;
}

/// The default engine's schedule, expressed as a strategy: always execute
/// the enabled step with the least `(at, order)` — i.e. virtual-time
/// order with creation-order tie-breaks.
///
/// With this strategy a scheduled run is byte-identical (same events,
/// same timestamps, same stats, same stop reason) to the plain
/// heap-driven [`Sim::run`](crate::sim::Sim::run); the
/// `strategy_seam` regression tests assert exactly that.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeOrderedStrategy;

impl Strategy for TimeOrderedStrategy {
    fn choose(&mut self, enabled: &[EnabledStep]) -> usize {
        let mut best = 0;
        for (i, step) in enabled.iter().enumerate().skip(1) {
            if (step.at, step.order) < (enabled[best].at, enabled[best].order) {
                best = i;
            }
        }
        best
    }
}

/// A seeded uniformly-random scheduler: the depth/branch-budgeted
/// random-walk fallback for instances too large to explore exhaustively.
///
/// Unlike the default engine — where randomness enters through latency
/// draws but delivery still follows virtual time — this adversary ignores
/// time entirely and picks any enabled step with equal probability, so it
/// reaches schedules (e.g. long starvations of one process) that no
/// latency assignment of the time-ordered engine produces with
/// non-negligible probability.
#[derive(Debug)]
pub struct RandomStrategy {
    rng: StdRng,
}

impl RandomStrategy {
    /// A random scheduler with the given seed. Runs are deterministic per
    /// seed.
    pub fn new(seed: u64) -> Self {
        RandomStrategy {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Strategy for RandomStrategy {
    fn choose(&mut self, enabled: &[EnabledStep]) -> usize {
        // Modulo bias is irrelevant here: len is tiny relative to 2^64,
        // and the walk only needs coverage, not exact uniformity.
        (self.rng.next_u64() % enabled.len() as u64) as usize
    }
}

/// Replays a recorded [`ChoiceTrace`]; past its end, falls back to the
/// first enabled step (canonical order), which is the same default a
/// fresh exploration uses.
#[derive(Debug, Clone)]
pub struct ReplayStrategy {
    choices: ChoiceTrace,
    pos: usize,
}

impl ReplayStrategy {
    /// A strategy following `choices`, then first-enabled.
    pub fn new(choices: ChoiceTrace) -> Self {
        ReplayStrategy { choices, pos: 0 }
    }
}

impl Strategy for ReplayStrategy {
    fn choose(&mut self, enabled: &[EnabledStep]) -> usize {
        let choice = match self.choices.get(self.pos) {
            Some(&c) => {
                assert!(
                    (c as usize) < enabled.len(),
                    "replay choice {c} out of range (only {} steps enabled): \
                     the trace was recorded against a different system",
                    enabled.len()
                );
                c as usize
            }
            None => 0,
        };
        self.pos += 1;
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(order: u64, at: u64) -> EnabledStep {
        EnabledStep {
            kind: StepKind::Timer {
                pid: ProcessId::new(0),
                timer: TimerId::new(order),
            },
            at: VirtualTime::from_ticks(at),
            order,
            noop: false,
        }
    }

    #[test]
    fn time_ordered_picks_least_time_then_order() {
        let mut s = TimeOrderedStrategy;
        let enabled = vec![step(5, 30), step(2, 10), step(9, 10)];
        assert_eq!(s.choose(&enabled), 1, "least (at, order) wins");
        let enabled = vec![step(7, 4), step(1, 9)];
        assert_eq!(s.choose(&enabled), 0);
    }

    #[test]
    fn random_strategy_is_deterministic_per_seed() {
        let enabled: Vec<_> = (0..7).map(|i| step(i, i)).collect();
        let picks = |seed| {
            let mut s = RandomStrategy::new(seed);
            (0..32).map(|_| s.choose(&enabled)).collect::<Vec<_>>()
        };
        assert_eq!(picks(3), picks(3));
        assert_ne!(picks(3), picks(4));
        assert!(picks(3).iter().all(|&i| i < enabled.len()));
    }

    #[test]
    fn replay_follows_then_defaults_to_first() {
        let mut s = ReplayStrategy::new(vec![2, 0]);
        let enabled: Vec<_> = (0..4).map(|i| step(i, i)).collect();
        assert_eq!(s.choose(&enabled), 2);
        assert_eq!(s.choose(&enabled), 0);
        assert_eq!(s.choose(&enabled), 0, "past the trace: first enabled");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn replay_rejects_foreign_traces() {
        let mut s = ReplayStrategy::new(vec![9]);
        let enabled = vec![step(0, 0)];
        let _ = s.choose(&enabled);
    }

    #[test]
    fn surgery_truncates_splices_and_replaces() {
        let choices = vec![3, 1, 4, 1, 5];
        assert_eq!(surgery::truncated(&choices, 2), vec![3, 1]);
        assert_eq!(surgery::truncated(&choices, 99), choices);
        assert_eq!(surgery::without_range(&choices, 1..3), vec![3, 1, 5]);
        assert_eq!(surgery::without_range(&choices, 3..99), vec![3, 1, 4]);
        assert_eq!(surgery::without_range(&choices, 5..9), choices);
        assert_eq!(surgery::with_choice(&choices, 0, 0), vec![0, 1, 4, 1, 5]);
        assert_eq!(surgery::with_choice(&choices, 9, 0), choices);
        // All read-only: the source is untouched.
        assert_eq!(choices, vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn forced_positions_are_width_one_decisions() {
        let log = ScheduleLog {
            steps: vec![
                StepLog {
                    enabled: vec![step(0, 0)],
                    chosen: 0,
                },
                StepLog {
                    enabled: vec![step(1, 0), step(2, 0)],
                    chosen: 1,
                },
                StepLog {
                    enabled: vec![step(3, 0)],
                    chosen: 0,
                },
            ],
        };
        assert_eq!(log.forced_positions(), vec![0, 2]);
        assert_eq!(log.executed(1), Some(&step(2, 0)));
        assert_eq!(log.executed(3), None);
    }

    #[test]
    fn locus_is_the_touched_process() {
        assert_eq!(
            StepKind::Deliver {
                from: ProcessId::new(0),
                to: ProcessId::new(2)
            }
            .locus(),
            ProcessId::new(2)
        );
        assert_eq!(
            StepKind::Inject {
                pid: ProcessId::new(1)
            }
            .locus(),
            ProcessId::new(1)
        );
    }
}
