//! # sfs-asys — asynchronous distributed system substrate
//!
//! This crate is the execution substrate for the reproduction of Sabel &
//! Marzullo, *Simulating Fail-Stop in Asynchronous Distributed Systems*
//! (1994). It provides the paper's system model (§2) as runnable
//! infrastructure:
//!
//! * [`ProcessId`], [`MsgId`] — processes `P = {1..n}` and unique messages;
//! * [`Process`] / [`Context`] — deterministic reactive process automata;
//! * [`Sim`] — a deterministic discrete-event simulator with reliable,
//!   unbounded-delay FIFO channels between every ordered pair of processes;
//! * [`Strategy`] and the [`strategy`] module — the scheduler seam: the
//!   run loop's "which enabled step executes next?" decision as a
//!   pluggable policy, from the default time-ordered scheduler to the
//!   recorded/replayable adversaries the `sfs-explore` crate drives;
//! * [`LatencyModel`] implementations — the explicit asynchrony adversary,
//!   from benign random delay to the scripted "delayed indefinitely"
//!   constructions of Appendix A.3;
//! * [`LinkModel`] / [`FaultyLink`] / [`PartitionSchedule`] — the faulty
//!   network *beneath* the paper's channel axioms: per-message
//!   deliver/drop/duplicate verdicts and scripted partitions, over which
//!   the `sfs-transport` crate re-earns reliable FIFO;
//! * [`FaultPlan`] — crash and stimulus injection;
//! * [`Trace`] — the total order of observed events, consumed by the
//!   `sfs-history` and `sfs-tlogic` crates;
//! * [`net`] — a threaded runtime driving the same [`Process`] automata
//!   over real OS threads and crossbeam channels.
//!
//! # Examples
//!
//! A two-process ping/pong run:
//!
//! ```
//! use sfs_asys::{Context, Process, ProcessId, Sim};
//!
//! #[derive(Clone, Debug)]
//! enum Msg { Ping, Pong }
//!
//! struct Pinger;
//! impl Process<Msg> for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
//!         ctx.send(ProcessId::new(1), Msg::Ping);
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: ProcessId, _msg: Msg) {}
//! }
//!
//! struct Ponger;
//! impl Process<Msg> for Ponger {
//!     fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {}
//!     fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, _msg: Msg) {
//!         ctx.send(from, Msg::Pong);
//!     }
//! }
//!
//! let sim = Sim::<Msg>::builder(2).seed(1).build(|pid| {
//!     if pid.index() == 0 { Box::new(Pinger) } else { Box::new(Ponger) }
//! });
//! let trace = sim.run();
//! assert_eq!(trace.stats().messages_delivered, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fault;
mod id;
mod latency;
mod link;
mod note;
pub mod observe;
mod process;
mod sim;
pub mod strategy;
mod time;
mod timers;
mod trace;
mod wheel;

pub mod net;

pub use fault::{FaultPlan, Injection};
pub use id::{MsgId, ProcessId, TimerId};
pub use latency::{
    FixedLatency, FnLatency, LatencyError, LatencyModel, OverrideLatency, UniformLatency, NEVER,
};
pub use link::{FaultyLink, FnLink, LinkModel, LinkVerdict, PartitionSchedule, StormSchedule};
pub use note::{Note, NOTE_LEADER, NOTE_QUORUM};
pub use observe::{EventSink, EventSinkHandle, MsgClass, ObsEvent, ObsHandle, ObsSink};
pub use process::{Action, Context, Process, ReceiveFilter};
pub use sim::{CrashRegistry, Sim, SimBuilder, SimConfig};
pub use strategy::{
    ChoiceTrace, EnabledStep, RandomStrategy, ReplayStrategy, ScheduleLog, StepKind, StepLog,
    Strategy, TimeOrderedStrategy,
};
pub use time::VirtualTime;
pub use trace::{SimStats, StopReason, Trace, TraceEvent, TraceEventKind};
pub use wheel::{TimerWheel, WheelEntryId};
