//! Deterministic discrete-event simulator for asynchronous message-passing
//! systems.
//!
//! The simulator realizes the paper's system model (§2) exactly:
//!
//! * `n` processes that fail only by crashing and never recover;
//! * a unidirectional, reliable, infinite-buffer FIFO channel between every
//!   ordered pair of processes (including `C_{i,i}` — the paper's protocol
//!   sends to "all processes, including itself");
//! * unbounded message delay, chosen per message by a pluggable
//!   [`LatencyModel`](crate::latency::LatencyModel) (the explicit
//!   asynchrony adversary);
//! * no global clock visible to processes — virtual time orders simulator
//!   bookkeeping and drives the timeout *mechanism* the paper assumes for
//!   FS1, nothing more.
//!
//! Every run is fully determined by `(processes, latency model, fault
//! plan, seed)` — plus, in scheduled mode, the [`Strategy`]'s choice
//! sequence — and produces a [`Trace`] consumed by the history and
//! property-checking crates.
//!
//! # Scheduling modes
//!
//! The engine has two run loops over the same action/delivery machinery:
//!
//! * **Time-ordered** ([`Sim::run`] with no strategy installed) — events
//!   execute in virtual-time order with creation-order tie-breaks; the
//!   asynchrony adversary acts through the latency model's delay draws.
//!   This is the fast statistical mode used by the E1–E8 sweeps.
//! * **Scheduled** ([`Sim::run_scheduled`], or [`Sim::run`] after a
//!   [`Strategy`] is installed) — at each step the engine materializes
//!   every enabled step (deliverable channel heads, armed timers, pending
//!   injections) and the strategy picks one, with every choice recorded
//!   in a [`ScheduleLog`] for replay. [`TimeOrderedStrategy`] reproduces
//!   the default loop byte-for-byte; the `sfs-explore` crate substitutes
//!   enumerating and randomizing strategies to search the schedule space
//!   (experiment E9).

use crate::fault::{FaultPlan, Injection};
use crate::id::{MsgId, ProcessId, TimerId};
use crate::latency::LatencyModel;
use crate::link::{LinkModel, LinkVerdict};
use crate::observe::{metric, EventSinkHandle, MsgClass, ObsEvent, ObsHandle};
use crate::process::{Action, Context, Process, ReceiveFilter};
use crate::strategy::{EnabledStep, ScheduleLog, StepKind, StepLog, Strategy, TimeOrderedStrategy};
use crate::time::VirtualTime;
use crate::timers::CancelledTimers;
use crate::trace::{SimStats, StopReason, Trace, TraceEvent, TraceEventKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Tuning knobs for one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Seed for all randomness in the run (latency draws, process rng).
    pub seed: u64,
    /// Virtual-time horizon; the run stops with [`StopReason::MaxTime`]
    /// when the next event would occur strictly after this time.
    pub max_time: VirtualTime,
    /// Event budget; the run stops with [`StopReason::MaxEvents`] when the
    /// trace reaches this many events.
    pub max_events: usize,
    /// Whether to record `Debug` renderings of message payloads in the
    /// trace (costs memory on long runs).
    pub record_payloads: bool,
    /// Scheduling-decision budget for **scheduled** runs (see
    /// [`Sim::run_scheduled`]); the run stops with
    /// [`StopReason::MaxSteps`] once this many steps have executed. This
    /// is the schedule explorer's depth bound. Ignored by the default
    /// time-ordered loop.
    pub max_steps: usize,
    /// Batched delivery flush for the time-ordered loop: all events due
    /// at the same virtual instant are drained in one heap pass and
    /// executed back to back, in exact pop order — byte-identical to the
    /// unbatched loop by construction (the simulator's shared rng makes
    /// any intra-instant reordering schedule-visible, so none happens
    /// here; the per-destination coalescing that does reorder across
    /// processes lives in the threaded router, whose nodes own their
    /// rngs). The run additionally measures the coalescing structure:
    /// [`SimStats::delivery_batches`](crate::trace::SimStats) counts the
    /// same-instant same-destination runs a batching transport would
    /// hand over as single batches. The `batch_equiv` suite in
    /// `sfs-apps` pins the equivalence. Ignored by scheduled runs, whose
    /// strategy owns the interleaving.
    pub batch_flush: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            max_time: VirtualTime::from_ticks(1_000_000),
            max_events: 1_000_000,
            record_payloads: false,
            max_steps: usize::MAX,
            batch_flush: false,
        }
    }
}

/// Live view of which processes have crashed, shared with oracle-style
/// detectors that model a *perfect* failure detector (used to produce
/// reference fail-stop runs; impossible to implement for real, per
/// Theorem 1 — hence "oracle").
///
/// Thread-safe so that oracle-configured processes can also run on the
/// threaded runtime. Crash flags are per-process atomics, so oracle
/// detectors polling inside the simulator's run loop pay one relaxed-ish
/// load instead of a mutex round trip per query.
#[derive(Debug, Clone, Default)]
pub struct CrashRegistry {
    inner: Arc<[AtomicBool]>,
}

impl CrashRegistry {
    /// An all-alive registry for `n` processes. The simulator creates one
    /// per run automatically; the threaded runtime takes one via
    /// `RuntimeConfig::registry` so oracle-configured processes can run on
    /// real threads too.
    pub fn new(n: usize) -> Self {
        Self::with_capacity(n)
    }

    fn with_capacity(n: usize) -> Self {
        CrashRegistry {
            inner: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    pub(crate) fn mark(&self, pid: ProcessId) {
        if let Some(flag) = self.inner.get(pid.index()) {
            flag.store(true, Ordering::Release);
        }
    }

    /// Whether `pid` has crashed so far in the run.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.inner
            .get(pid.index())
            .is_some_and(|flag| flag.load(Ordering::Acquire))
    }

    /// All processes crashed so far, without allocating: the hot-path
    /// variant of [`CrashRegistry::crashed`] for detector scans that run
    /// every poll interval.
    pub fn iter_crashed(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.inner
            .iter()
            .enumerate()
            .filter_map(|(i, flag)| flag.load(Ordering::Acquire).then_some(ProcessId::new(i)))
    }

    /// Visits every crashed process, without allocating. Equivalent to
    /// `iter_crashed().for_each(f)`; kept as a named entry point so
    /// detector code reads as a scan, not a collection.
    pub fn for_each_crashed(&self, f: impl FnMut(ProcessId)) {
        self.iter_crashed().for_each(f);
    }

    /// All processes crashed so far, as a fresh vector. Prefer
    /// [`CrashRegistry::iter_crashed`] in per-step/per-poll paths: this
    /// variant allocates on every call.
    pub fn crashed(&self) -> Vec<ProcessId> {
        self.iter_crashed().collect()
    }
}

struct InFlight<M> {
    msg: MsgId,
    payload: M,
    sent_at: VirtualTime,
    deliver_at: VirtualTime,
    infra: bool,
}

enum Pending<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
    },
    Timer {
        pid: ProcessId,
        id: TimerId,
    },
    Inject {
        pid: ProcessId,
        injection: Injection<M>,
    },
}

struct QueueEntry<M> {
    at: VirtualTime,
    order: u64,
    pending: Pending<M>,
}

impl<M> QueueEntry<M> {
    /// The process whose state executing this entry touches — the batched
    /// flush's grouping key (every pending step affects exactly one
    /// process, mirroring the paper's model where an event changes the
    /// state of one process and at most one incident channel).
    fn target_index(&self) -> usize {
        match self.pending {
            Pending::Deliver { to, .. } => to.index(),
            Pending::Timer { pid, .. } => pid.index(),
            Pending::Inject { pid, .. } => pid.index(),
        }
    }
}

impl<M> PartialEq for QueueEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.order == other.order
    }
}
impl<M> Eq for QueueEntry<M> {}
impl<M> PartialOrd for QueueEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueueEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.order).cmp(&(other.at, other.order))
    }
}

/// Predicate marking payloads as infrastructure; see [`SimBuilder::classify`].
type Classifier<M> = Box<dyn Fn(&M) -> bool>;

/// Per-payload wire-byte measure; see [`SimBuilder::measure`].
type Measure<M> = Box<dyn Fn(&M) -> u64>;

/// The simulation engine. Construct via [`SimBuilder`].
pub struct Sim<M> {
    n: usize,
    processes: Vec<Box<dyn Process<M>>>,
    crashed: Vec<bool>,
    channels: Vec<VecDeque<InFlight<M>>>,
    queue: BinaryHeap<Reverse<QueueEntry<M>>>,
    cancelled: CancelledTimers,
    filters: Vec<Option<ReceiveFilter<M>>>,
    /// Per-channel flag: the head was refused by the receiver's filter and
    /// the channel therefore has no pending heap entry.
    parked: Vec<bool>,
    link: Box<dyn LinkModel>,
    classifier: Option<Classifier<M>>,
    measure: Option<Measure<M>>,
    obs: Option<ObsHandle>,
    sink: Option<EventSinkHandle>,
    registry: CrashRegistry,
    rng: StdRng,
    now: VirtualTime,
    order: u64,
    next_timer: u64,
    msg_seq: Vec<u64>,
    events: Vec<TraceEvent>,
    stats: SimStats,
    failed_flags: Vec<bool>,
    config: SimConfig,
    /// Installed scheduling strategy; `None` selects the time-ordered
    /// heap loop.
    strategy: Option<Box<dyn Strategy>>,
    /// Pending steps in creation order — the scheduled loop's working set
    /// (the heap is drained into it when a scheduled run starts).
    pending: Vec<QueueEntry<M>>,
    /// Whether `push_entry` should append to `pending` (scheduled loop
    /// running) instead of the heap.
    scheduled: bool,
}

impl<M> fmt::Debug for Sim<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("n", &self.n)
            .field("now", &self.now)
            .field("events", &self.events.len())
            .field("pending", &self.queue.len())
            .finish_non_exhaustive()
    }
}

/// Builder for [`Sim`]; see [`Sim::builder`].
pub struct SimBuilder<M> {
    n: usize,
    config: SimConfig,
    link: Box<dyn LinkModel>,
    classifier: Option<Classifier<M>>,
    measure: Option<Measure<M>>,
    obs: Option<ObsHandle>,
    sink: Option<EventSinkHandle>,
    plan: FaultPlan<M>,
    registry: CrashRegistry,
    strategy: Option<Box<dyn Strategy>>,
}

impl<M> fmt::Debug for SimBuilder<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuilder")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<M: Clone + fmt::Debug + 'static> SimBuilder<M> {
    /// Sets the run configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the seed (shorthand for mutating [`SimConfig::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the virtual-time horizon.
    pub fn max_time(mut self, t: VirtualTime) -> Self {
        self.config.max_time = t;
        self
    }

    /// Sets the event budget.
    pub fn max_events(mut self, max: usize) -> Self {
        self.config.max_events = max;
        self
    }

    /// Records message payload `Debug` text into the trace.
    pub fn record_payloads(mut self, on: bool) -> Self {
        self.config.record_payloads = on;
        self
    }

    /// Sets the scheduled-mode step budget (shorthand for mutating
    /// [`SimConfig::max_steps`]).
    pub fn max_steps(mut self, max: usize) -> Self {
        self.config.max_steps = max;
        self
    }

    /// Enables the batched delivery flush (shorthand for mutating
    /// [`SimConfig::batch_flush`]).
    pub fn batch_deliveries(mut self, on: bool) -> Self {
        self.config.batch_flush = on;
        self
    }

    /// Sets the latency model (the asynchrony adversary). Every latency
    /// model is a loss-free [`LinkModel`]; use [`SimBuilder::link`] for a
    /// faulty network.
    pub fn latency(mut self, model: impl LatencyModel + 'static) -> Self {
        self.link = Box::new(model);
        self
    }

    /// Sets the link model (the faulty-network adversary): per-message
    /// verdicts of deliver/drop/duplicate, e.g. a
    /// [`FaultyLink`](crate::link::FaultyLink) with loss, duplication,
    /// and a partition schedule.
    pub fn link(mut self, model: impl LinkModel + 'static) -> Self {
        self.link = Box::new(model);
        self
    }

    /// Installs a scheduling [`Strategy`]: the run becomes **scheduled**
    /// ([`Sim::run`] will route through [`Sim::run_scheduled`]), with the
    /// strategy choosing among the enabled steps at every point instead
    /// of the engine following virtual time.
    pub fn strategy(mut self, strategy: impl Strategy + 'static) -> Self {
        self.strategy = Some(Box::new(strategy));
        self
    }

    /// Sets the fault/injection plan.
    pub fn faults(mut self, plan: FaultPlan<M>) -> Self {
        self.plan = plan;
        self
    }

    /// Installs a message classifier: `true` marks a payload as
    /// *infrastructure* (protocol-internal, beneath the paper's formal
    /// model), `false` as a model-level application message. The flag is
    /// recorded on every send/receive trace event so that histories can
    /// be projected onto the model alphabet.
    pub fn classify(mut self, f: impl Fn(&M) -> bool + 'static) -> Self {
        self.classifier = Some(Box::new(f));
        self
    }

    /// Installs a wire-byte measure: the number of bytes sending this
    /// payload would put on a real wire (e.g. `sfs_wire::frame::wire_cost`).
    /// Charged to [`SimStats::wire_bytes`] once per send, on the sender's
    /// side — duplicated and dropped copies are the network's doing, not
    /// the protocol's spend — which makes simulated byte budgets directly
    /// comparable to the UDP backend's datagram accounting.
    pub fn measure(mut self, f: impl Fn(&M) -> u64 + 'static) -> Self {
        self.measure = Some(Box::new(f));
        self
    }

    /// Attaches a telemetry sink (see [`crate::observe`]). The sink is
    /// fed already-decided facts — sends, deliveries and their latency,
    /// drops, timer firings, detections, crashes — and by construction
    /// cannot influence the run: it has no access to the rng, the clock,
    /// or the queue, so an observed run is byte-identical to a bare one.
    pub fn observe(mut self, obs: ObsHandle) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a trace-event sink (see [`crate::observe::EventSink`]):
    /// every event appended to the trace is also handed, by reference, to
    /// the sink — the live feed the streaming sFS monitors run on. The
    /// sink sees each event *after* it is recorded and has no path back
    /// into the rng, the clock, or the queue, so a monitored run is
    /// byte-identical to a bare one.
    pub fn event_sink(mut self, sink: EventSinkHandle) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The crash registry for this run, for wiring oracle detectors into
    /// process constructors before the sim is built.
    pub fn crash_registry(&self) -> CrashRegistry {
        self.registry.clone()
    }

    /// Finalizes the simulator with one process per id, built by `make`.
    pub fn build<F>(self, mut make: F) -> Sim<M>
    where
        F: FnMut(ProcessId) -> Box<dyn Process<M>>,
    {
        let n = self.n;
        let processes: Vec<_> = ProcessId::all(n).map(&mut make).collect();
        // Pre-size the run-loop buffers from the configuration: enough for
        // a few protocol rounds (Θ(n²) messages each) without reallocating,
        // clamped by the event budget so short-budget runs allocate no more
        // than they may record, and capped so a generous default budget
        // does not reserve hundreds of megabytes up front.
        let event_capacity = self.config.max_events.min((n * n * 8).clamp(256, 1 << 14));
        let mut sim = Sim {
            n,
            processes,
            crashed: vec![false; n],
            channels: (0..n * n).map(|_| VecDeque::new()).collect(),
            queue: BinaryHeap::with_capacity((n * 4).max(64)),
            cancelled: CancelledTimers::new(),
            filters: (0..n).map(|_| None).collect(),
            parked: vec![false; n * n],
            link: self.link,
            classifier: self.classifier,
            measure: self.measure,
            obs: self.obs,
            sink: self.sink,
            registry: self.registry,
            rng: StdRng::seed_from_u64(self.config.seed),
            now: VirtualTime::ZERO,
            order: 0,
            next_timer: 0,
            msg_seq: vec![0; n],
            events: Vec::with_capacity(event_capacity),
            stats: SimStats::default(),
            failed_flags: vec![false; n * n],
            config: self.config,
            strategy: self.strategy,
            pending: Vec::new(),
            scheduled: false,
        };
        for (time, pid, injection) in self.plan.into_items() {
            sim.push_entry(time, Pending::Inject { pid, injection });
        }
        sim
    }
}

impl<M: Clone + fmt::Debug + 'static> Sim<M> {
    /// Starts building an `n`-process simulation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn builder(n: usize) -> SimBuilder<M> {
        assert!(n > 0, "a system needs at least one process");
        SimBuilder {
            n,
            config: SimConfig::default(),
            link: Box::new(crate::latency::UniformLatency::new(1, 10)),
            classifier: None,
            measure: None,
            obs: None,
            sink: None,
            plan: FaultPlan::new(),
            registry: CrashRegistry::with_capacity(n),
            strategy: None,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The live crash view shared with oracle detectors.
    pub fn crash_registry(&self) -> CrashRegistry {
        self.registry.clone()
    }

    /// Installs (or replaces) the scheduling strategy after construction.
    /// Used by explorers, which build the sim through a factory and then
    /// take over its schedule.
    pub fn set_strategy(&mut self, strategy: impl Strategy + 'static) {
        self.strategy = Some(Box::new(strategy));
    }

    /// Overrides the scheduled-mode step budget after construction (see
    /// [`SimConfig::max_steps`]); the explorer's per-schedule depth bound.
    pub fn set_max_steps(&mut self, max: usize) {
        self.config.max_steps = max;
    }

    fn push_entry(&mut self, at: VirtualTime, pending: Pending<M>) {
        let order = self.order;
        self.order += 1;
        let entry = QueueEntry { at, order, pending };
        if self.scheduled {
            self.pending.push(entry);
        } else {
            self.queue.push(Reverse(entry));
        }
    }

    fn channel_index(&self, from: ProcessId, to: ProcessId) -> usize {
        from.index() * self.n + to.index()
    }

    fn record(&mut self, kind: TraceEventKind) {
        let seq = self.events.len();
        self.events.push(TraceEvent {
            seq,
            time: self.now,
            kind,
        });
        if let Some(sink) = &self.sink {
            sink.on_event(&self.events[seq]);
        }
    }

    fn payload_repr(&self, payload: &M) -> Option<String> {
        self.config.record_payloads.then(|| format!("{payload:?}"))
    }

    fn obs_count(&self, node: ProcessId, class: MsgClass, name: &'static str, delta: u64) {
        if let Some(obs) = &self.obs {
            obs.record(ObsEvent::Counter {
                node,
                class,
                name,
                delta,
            });
        }
    }

    fn obs_observe(&self, node: ProcessId, class: MsgClass, name: &'static str, value: u64) {
        if let Some(obs) = &self.obs {
            obs.record(ObsEvent::Observe {
                node,
                class,
                name,
                value,
            });
        }
    }

    /// Runs the process callback `f` for `pid` and applies resulting
    /// actions. Returns `false` if the process crashed during the batch.
    fn dispatch<F>(&mut self, pid: ProcessId, f: F)
    where
        F: FnOnce(&mut dyn Process<M>, &mut Context<'_, M>),
    {
        debug_assert!(!self.crashed[pid.index()]);
        let mut ctx = Context::new(pid, self.n, self.now, &mut self.rng, &mut self.next_timer);
        // Temporarily move the process out to sidestep aliasing with &mut self.
        let mut process = std::mem::replace(
            &mut self.processes[pid.index()],
            Box::new(InertProcess) as Box<dyn Process<M>>,
        );
        f(process.as_mut(), &mut ctx);
        let actions = ctx.take_actions();
        self.processes[pid.index()] = process;
        self.apply_actions(pid, actions);
    }

    fn apply_actions(&mut self, pid: ProcessId, actions: Vec<Action<M>>) {
        for action in actions {
            if self.crashed[pid.index()] {
                // The paper's crash event is final: once `crash_i` is true
                // the state of `i` does not change further, so any actions
                // queued after CrashSelf in the same callback are void.
                break;
            }
            if self.events.len() >= self.config.max_events {
                // Event budget exhausted mid-batch: the run is stopping,
                // and the rest of the batch falls outside the recorded
                // prefix. Discarding it keeps the trace, the stats
                // counters, the channels, and the crash registry all
                // describing the same prefix (the run-loop top will break
                // with `MaxEvents` before processing anything further).
                break;
            }
            match action {
                Action::Send { to, msg } => self.do_send(pid, to, msg),
                Action::SetTimer { id, delay } => {
                    let at = self.now + delay.max(1);
                    self.push_entry(at, Pending::Timer { pid, id });
                }
                Action::CancelTimer { id } => {
                    self.cancelled.cancel(id);
                }
                Action::CrashSelf => self.do_crash(pid),
                Action::DeclareFailed { of } => self.do_declare_failed(pid, of),
                Action::Annotate(note) => {
                    self.record(TraceEventKind::Note { pid, note });
                }
                Action::SetReceiveFilter(filter) => {
                    self.filters[pid.index()] = filter;
                    self.unpark_channels_to(pid);
                }
                Action::ModelSend { to, msg } => {
                    self.record(TraceEventKind::Send {
                        from: pid,
                        to,
                        msg,
                        infra: false,
                        payload: None,
                    });
                }
                Action::ModelRecv { from, msg } => {
                    self.record(TraceEventKind::Recv {
                        by: pid,
                        from,
                        msg,
                        infra: false,
                        payload: None,
                    });
                }
            }
        }
    }

    /// Re-schedules delivery attempts for parked channels into `to` after
    /// its receive filter changed.
    fn unpark_channels_to(&mut self, to: ProcessId) {
        let n = self.n;
        for from in 0..n {
            let ch = from * n + to.index();
            if !self.parked[ch] {
                continue;
            }
            self.parked[ch] = false;
            if let Some(head) = self.channels[ch].front() {
                let at = head.deliver_at.max(self.now);
                self.push_entry(
                    at,
                    Pending::Deliver {
                        from: ProcessId::new(from),
                        to,
                    },
                );
            }
        }
    }

    fn do_send(&mut self, from: ProcessId, to: ProcessId, payload: M) {
        let seq = self.msg_seq[from.index()];
        self.msg_seq[from.index()] += 1;
        let msg = MsgId::new(from, seq);
        let repr = self.payload_repr(&payload);
        let infra = self.classifier.as_ref().is_some_and(|f| f(&payload));
        self.record(TraceEventKind::Send {
            from,
            to,
            msg,
            infra,
            payload: repr,
        });
        self.stats.messages_sent += 1;
        let class = MsgClass::from_infra(infra);
        self.obs_count(from, class, metric::SENT, 1);
        if let Some(measure) = &self.measure {
            let cost = measure(&payload);
            self.stats.wire_bytes += cost;
            self.obs_count(from, class, metric::WIRE_BYTES, cost);
        }
        match self.link.verdict(from, to, self.now, &mut self.rng) {
            LinkVerdict::Deliver(delay) => self.enqueue(from, to, msg, payload, delay, infra),
            LinkVerdict::Drop => {
                // The network loses the message: the send is recorded (it
                // happened), but no copy enters the channel. Reliability
                // above this point is the transport layer's job.
                self.stats.messages_dropped += 1;
                self.obs_count(from, class, metric::DROPPED, 1);
            }
            LinkVerdict::Duplicate(d1, d2) => {
                self.stats.messages_duplicated += 1;
                self.obs_count(from, class, metric::DUPLICATED, 1);
                self.enqueue(from, to, msg, payload.clone(), d1, infra);
                self.enqueue(from, to, msg, payload, d2, infra);
            }
        }
    }

    /// Appends one in-flight copy to channel `from -> to`, scheduling a
    /// delivery attempt if the channel was idle.
    fn enqueue(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: MsgId,
        payload: M,
        delay: u64,
        infra: bool,
    ) {
        let deliver_at = self.now.saturating_add(delay.max(1));
        let ch = self.channel_index(from, to);
        let was_empty = self.channels[ch].is_empty();
        self.channels[ch].push_back(InFlight {
            msg,
            payload,
            sent_at: self.now,
            deliver_at,
            infra,
        });
        if was_empty {
            self.push_entry(deliver_at, Pending::Deliver { from, to });
        }
    }

    fn do_crash(&mut self, pid: ProcessId) {
        if self.crashed[pid.index()] {
            return;
        }
        self.crashed[pid.index()] = true;
        self.registry.mark(pid);
        self.record(TraceEventKind::Crash { pid });
        self.stats.crashes += 1;
        self.obs_count(pid, MsgClass::None, metric::CRASHES, 1);
        // Channels parked behind the crashed process's receive filter
        // have no scheduled delivery attempt left, and the filter that
        // refused them can never change again: consume their copies as
        // messages-to-crashed here, or `channels_drained()` would report
        // a genuinely finished run as undrained. (Non-parked channels
        // into `pid` keep their pending delivery entries and are counted
        // one by one through the normal path.)
        for from in 0..self.n {
            let ch = from * self.n + pid.index();
            if self.parked[ch] {
                self.parked[ch] = false;
                let stranded = self.channels[ch].len() as u64;
                self.stats.messages_to_crashed += stranded;
                if stranded > 0 {
                    self.obs_count(pid, MsgClass::None, metric::TO_CRASHED, stranded);
                }
                self.channels[ch].clear();
            }
        }
    }

    fn do_declare_failed(&mut self, by: ProcessId, of: ProcessId) {
        let flag = by.index() * self.n + of.index();
        if self.failed_flags[flag] {
            // failed_i(j) is a stable boolean in the paper: it becomes true
            // once; re-declarations are idempotent.
            return;
        }
        self.failed_flags[flag] = true;
        self.record(TraceEventKind::Failed { by, of });
        self.stats.detections += 1;
        self.obs_count(by, MsgClass::None, metric::DETECTIONS, 1);
    }

    /// Whether `by` has declared `of` failed so far.
    pub fn has_detected(&self, by: ProcessId, of: ProcessId) -> bool {
        self.failed_flags[by.index() * self.n + of.index()]
    }

    /// Runs the simulation to completion and returns the trace.
    ///
    /// With a [`Strategy`] installed (via [`SimBuilder::strategy`] or
    /// [`Sim::set_strategy`]) this routes through [`Sim::run_scheduled`]
    /// and discards the schedule log; without one it runs the default
    /// time-ordered loop.
    pub fn run(mut self) -> Trace {
        if self.strategy.is_some() {
            return self.run_scheduled().0;
        }
        // on_start for every process, in id order, at time zero.
        for pid in ProcessId::all(self.n) {
            if !self.crashed[pid.index()] {
                self.dispatch(pid, |p, ctx| p.on_start(ctx));
            }
        }
        // Flush scratch buffers, reused across iterations in batched mode:
        // the drained entries, a per-process event counter, and the list
        // of processes touched this flush (so resetting is O(touched)).
        let mut flush: Vec<QueueEntry<M>> = Vec::new();
        let mut flush_counts: Vec<u32> = vec![0; self.n];
        let mut touched: Vec<usize> = Vec::new();
        let stop = 'run: loop {
            if self.events.len() >= self.config.max_events {
                // `apply_actions` stops recording mid-batch at the budget,
                // so the trace is already an exact prefix here.
                debug_assert!(self.events.len() <= self.config.max_events);
                break StopReason::MaxEvents;
            }
            if self.crashed.iter().all(|&c| c) {
                break StopReason::AllCrashed;
            }
            let Some(Reverse(entry)) = self.queue.pop() else {
                break StopReason::Quiescent;
            };
            if entry.at > self.config.max_time {
                break StopReason::MaxTime;
            }
            self.now = entry.at;
            if !self.config.batch_flush {
                self.step_entry(entry);
                continue;
            }
            // Batched flush: drain every entry due at this same instant in
            // one heap pass and execute the run back to back, in exact pop
            // order. Execution order is NOT regrouped: the simulator's
            // random draws (latency model, process rngs) come from one
            // shared generator consumed in dispatch order, so any
            // reordering would reassign draws and silently fork the
            // schedule. Keeping pop order makes the batched run
            // byte-identical to the unbatched one by construction; the
            // per-destination coalescing that *does* reorder across
            // processes lives in the threaded router, where every node
            // owns its rng (see `net::router`). What is measured here is
            // the coalescing structure itself: how many same-instant
            // same-destination runs the flush contains.
            // Fast path: nothing else due at this instant — no flush to
            // account for.
            let dense = matches!(self.queue.peek(), Some(Reverse(top)) if top.at == self.now);
            if !dense {
                self.step_entry(entry);
                continue;
            }
            flush.clear();
            flush.push(entry);
            while let Some(Reverse(top)) = self.queue.peek() {
                if top.at != self.now {
                    break;
                }
                let Some(Reverse(next)) = self.queue.pop() else {
                    unreachable!("peeked entry vanished");
                };
                flush.push(next);
            }
            // Count per-destination groups of ≥ 2 *admissible* entries —
            // the batches a batching transport would hand over in one
            // send. Entries that dissolve before dispatch (cancelled
            // timers, deliveries to crashed or currently-refusing
            // targets) and injections (which a router never heaps) are
            // excluded, mirroring the threaded router's
            // admitted-items-only counter. Judged at flush time; effects
            // *within* the flush are not re-examined.
            for entry in &flush {
                if !self.would_dispatch(entry) {
                    continue;
                }
                let pid = entry.target_index();
                if flush_counts[pid] == 0 {
                    touched.push(pid);
                }
                flush_counts[pid] += 1;
            }
            self.stats.delivery_batches +=
                touched.iter().filter(|&&pid| flush_counts[pid] > 1).count() as u64;
            for &pid in &touched {
                flush_counts[pid] = 0;
            }
            touched.clear();
            for entry in flush.drain(..) {
                if self.events.len() >= self.config.max_events {
                    break 'run StopReason::MaxEvents;
                }
                if self.crashed.iter().all(|&c| c) {
                    break 'run StopReason::AllCrashed;
                }
                self.step_entry(entry);
            }
        };
        Trace::from_parts(self.n, self.events, stop, self.now, self.stats)
    }

    /// Whether a due entry would reach its target as a node event right
    /// now — the flush's admission predicate for counting coalescable
    /// runs (mirrors `net::router`'s `admit_due`: crashed targets,
    /// cancelled timers, and filter-refused channel heads dissolve;
    /// injections never ride a router heap at all).
    fn would_dispatch(&self, entry: &QueueEntry<M>) -> bool {
        match entry.pending {
            Pending::Deliver { from, to } => {
                if self.crashed[to.index()] {
                    return false;
                }
                let ch = from.index() * self.n + to.index();
                match (&self.filters[to.index()], self.channels[ch].front()) {
                    (Some(filter), Some(head)) => filter.accepts(&head.payload),
                    _ => true,
                }
            }
            Pending::Timer { pid, id } => {
                !self.crashed[pid.index()] && !self.cancelled.is_cancelled(id)
            }
            Pending::Inject { .. } => false,
        }
    }

    /// Executes one due queue entry — the step body shared by the
    /// per-entry path and the batched flush path of the time-ordered loop.
    fn step_entry(&mut self, entry: QueueEntry<M>) {
        match entry.pending {
            Pending::Deliver { from, to } => self.deliver(from, to),
            Pending::Timer { pid, id } => {
                if !self.cancelled.take(id) && !self.crashed[pid.index()] {
                    self.record(TraceEventKind::TimerFired { pid, timer: id });
                    self.stats.timers_fired += 1;
                    self.obs_count(pid, MsgClass::None, metric::TIMERS, 1);
                    self.dispatch(pid, |p, ctx| p.on_timer(ctx, id));
                }
            }
            Pending::Inject { pid, injection } => {
                if self.crashed[pid.index()] {
                    return;
                }
                match injection {
                    Injection::Crash => self.do_crash(pid),
                    Injection::External(payload) => {
                        let repr = self.payload_repr(&payload);
                        self.record(TraceEventKind::External { pid, payload: repr });
                        self.dispatch(pid, |p, ctx| p.on_external(ctx, payload));
                    }
                }
            }
        }
    }

    /// Runs the simulation under the installed [`Strategy`] — installing
    /// [`TimeOrderedStrategy`] when none is — and records every
    /// scheduling decision in a [`ScheduleLog`].
    ///
    /// At each step the engine builds the canonical (creation-ordered)
    /// list of enabled steps: one per non-empty, non-parked channel (its
    /// head), one per armed timer, one per pending injection. The
    /// strategy picks an index; the step executes; repeat. The log pairs
    /// every enabled list with the index chosen from it, so any run can
    /// be replayed exactly by feeding
    /// [`ScheduleLog::choices`] to a
    /// [`ReplayStrategy`](crate::strategy::ReplayStrategy), and schedule
    /// explorers can use the per-step enabled lists as the branching
    /// structure of the schedule tree.
    ///
    /// Under [`TimeOrderedStrategy`] the result is byte-identical to
    /// [`Sim::run`]'s default loop — same events, timestamps, stats, and
    /// stop reason.
    pub fn run_scheduled(mut self) -> (Trace, ScheduleLog) {
        let mut strategy = self
            .strategy
            .take()
            .unwrap_or_else(|| Box::new(TimeOrderedStrategy));
        // Route all further pushes into the scheduled working set and move
        // the construction-time entries (the fault plan) over, restoring
        // creation order.
        self.scheduled = true;
        let mut moved: Vec<QueueEntry<M>> = std::mem::take(&mut self.queue)
            .into_iter()
            .map(|Reverse(e)| e)
            .collect();
        moved.sort_by_key(|e| e.order);
        moved.append(&mut self.pending);
        self.pending = moved;
        // on_start for every process, in id order, at time zero.
        for pid in ProcessId::all(self.n) {
            if !self.crashed[pid.index()] {
                self.dispatch(pid, |p, ctx| p.on_start(ctx));
            }
        }
        let mut log = ScheduleLog::default();
        let stop = loop {
            if self.events.len() >= self.config.max_events {
                break StopReason::MaxEvents;
            }
            if self.crashed.iter().all(|&c| c) {
                break StopReason::AllCrashed;
            }
            if self.pending.is_empty() {
                break StopReason::Quiescent;
            }
            // The step budget is checked after the terminal conditions so
            // that replaying a run under `max_steps = choices.len()`
            // reproduces its stop reason (a quiescent recording stays
            // Quiescent, a truncated one stays truncated).
            if log.steps.len() >= self.config.max_steps {
                break StopReason::MaxSteps;
            }
            let enabled = self.enabled_steps();
            let chosen = strategy.choose(&enabled);
            assert!(
                chosen < enabled.len(),
                "strategy chose step {chosen} of {}",
                enabled.len()
            );
            let entry = self.pending.remove(chosen);
            // Every consumed decision is logged — including the one that
            // trips the horizon below — so a replay of `log.choices()`
            // consumes the same choices and stops identically.
            log.steps.push(StepLog {
                enabled,
                chosen: chosen as u32,
            });
            if entry.at > self.config.max_time {
                break StopReason::MaxTime;
            }
            // Time only ever advances: an adversarially re-ordered step
            // executes at the latest of its own ready time and the
            // current clock, mirroring an adversary that withheld it.
            self.now = self.now.max(entry.at);
            match entry.pending {
                Pending::Deliver { from, to } => self.deliver(from, to),
                Pending::Timer { pid, id } => {
                    if !self.cancelled.take(id) && !self.crashed[pid.index()] {
                        self.record(TraceEventKind::TimerFired { pid, timer: id });
                        self.stats.timers_fired += 1;
                        self.obs_count(pid, MsgClass::None, metric::TIMERS, 1);
                        self.dispatch(pid, |p, ctx| p.on_timer(ctx, id));
                    }
                }
                Pending::Inject { pid, injection } => {
                    if !self.crashed[pid.index()] {
                        match injection {
                            Injection::Crash => self.do_crash(pid),
                            Injection::External(payload) => {
                                let repr = self.payload_repr(&payload);
                                self.record(TraceEventKind::External { pid, payload: repr });
                                self.dispatch(pid, |p, ctx| p.on_external(ctx, payload));
                            }
                        }
                    }
                }
            }
        };
        (
            Trace::from_parts(self.n, self.events, stop, self.now, self.stats),
            log,
        )
    }

    /// The canonical enabled-step list for the current state: one entry
    /// per pending step, in creation order, annotated with the no-op flag
    /// (see [`EnabledStep::noop`]).
    fn enabled_steps(&self) -> Vec<EnabledStep> {
        self.pending
            .iter()
            .map(|e| {
                let (kind, noop) = match e.pending {
                    Pending::Deliver { from, to } => {
                        (StepKind::Deliver { from, to }, self.crashed[to.index()])
                    }
                    Pending::Timer { pid, id } => (
                        StepKind::Timer { pid, timer: id },
                        self.crashed[pid.index()] || self.cancelled.is_cancelled(id),
                    ),
                    Pending::Inject { pid, .. } => {
                        (StepKind::Inject { pid }, self.crashed[pid.index()])
                    }
                };
                EnabledStep {
                    kind,
                    at: e.at,
                    order: e.order,
                    noop,
                }
            })
            .collect()
    }

    fn deliver(&mut self, from: ProcessId, to: ProcessId) {
        let ch = self.channel_index(from, to);
        // A live receiver may refuse the head message via its filter: the
        // message stays at the head of the channel (unreceived, per the
        // paper's model) and the channel parks until the filter changes.
        if !self.crashed[to.index()] {
            if let Some(filter) = &self.filters[to.index()] {
                let head = self.channels[ch]
                    .front()
                    .expect("delivery scheduled for empty channel: engine invariant broken");
                if !filter.accepts(&head.payload) {
                    self.parked[ch] = true;
                    return;
                }
            }
        }
        let in_flight = self.channels[ch]
            .pop_front()
            .expect("delivery scheduled for empty channel: engine invariant broken");
        // Schedule the next head, if any, preserving FIFO: it cannot be
        // delivered before the message ahead of it was.
        if let Some(next) = self.channels[ch].front() {
            let at = next.deliver_at.max(self.now);
            self.push_entry(at, Pending::Deliver { from, to });
        }
        let class = MsgClass::from_infra(in_flight.infra);
        if self.crashed[to.index()] {
            // The channel does not lose the message; the crashed process
            // simply never executes a receive event for it.
            self.stats.messages_to_crashed += 1;
            self.obs_count(to, class, metric::TO_CRASHED, 1);
            return;
        }
        let repr = self.payload_repr(&in_flight.payload);
        self.record(TraceEventKind::Recv {
            by: to,
            from,
            msg: in_flight.msg,
            infra: in_flight.infra,
            payload: repr,
        });
        self.stats.messages_delivered += 1;
        self.obs_count(to, class, metric::DELIVERED, 1);
        self.obs_observe(
            to,
            class,
            metric::DELIVERY_LATENCY,
            self.now.ticks().saturating_sub(in_flight.sent_at.ticks()),
        );
        self.dispatch(to, |p, ctx| p.on_message(ctx, from, in_flight.payload));
    }
}

/// Placeholder swapped in while a real process is borrowed for dispatch.
struct InertProcess;

impl<M> Process<M> for InertProcess {
    fn on_start(&mut self, _: &mut Context<'_, M>) {}
    fn on_message(&mut self, _: &mut Context<'_, M>, _: ProcessId, _: M) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{FixedLatency, OverrideLatency, UniformLatency};

    /// Floods `count` messages to a sink on start; sink records nothing.
    struct Flooder {
        count: usize,
        target: ProcessId,
    }

    impl Process<u32> for Flooder {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            for k in 0..self.count {
                ctx.send(self.target, k as u32);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
    }

    struct Sink {
        received: Vec<u32>,
    }

    impl Process<u32> for Sink {
        fn on_start(&mut self, _: &mut Context<'_, u32>) {}
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
            // Re-broadcast so the test can observe ordering through the trace.
            let _ = ctx;
            self.received.push(msg);
        }
    }

    fn fifo_trace(seed: u64) -> Trace {
        let sim = Sim::<u32>::builder(2)
            .seed(seed)
            .latency(UniformLatency::new(1, 50))
            .build(|pid| {
                if pid.index() == 0 {
                    Box::new(Flooder {
                        count: 20,
                        target: ProcessId::new(1),
                    })
                } else {
                    Box::new(Sink {
                        received: Vec::new(),
                    })
                }
            });
        sim.run()
    }

    #[test]
    fn fifo_order_is_preserved_despite_random_latency() {
        for seed in 0..20 {
            let trace = fifo_trace(seed);
            let recvs: Vec<u64> = trace
                .events()
                .iter()
                .filter_map(|e| match e.kind {
                    TraceEventKind::Recv { by, msg, .. } if by == ProcessId::new(1) => {
                        Some(msg.seq())
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(recvs.len(), 20, "all messages delivered");
            assert!(
                recvs.is_sorted(),
                "FIFO violated with seed {seed}: {recvs:?}"
            );
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = fifo_trace(7);
        let b = fifo_trace(7);
        assert_eq!(a, b);
        let c = fifo_trace(8);
        assert_ne!(
            a.events(),
            c.events(),
            "different seeds should reorder deliveries"
        );
    }

    #[test]
    fn quiescence_is_reported() {
        let trace = fifo_trace(1);
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
    }

    #[test]
    fn event_budget_is_exact_and_coherent_with_stats() {
        // One on_start batch queues 20 sends; a budget of 5 must cut the
        // batch so the trace holds exactly 5 events AND the stats
        // counters describe the same prefix (no phantom sends counted
        // for events the trace does not contain).
        let sim = Sim::<u32>::builder(2)
            .max_events(5)
            .latency(FixedLatency(1))
            .build(|pid| {
                if pid.index() == 0 {
                    Box::new(Flooder {
                        count: 20,
                        target: ProcessId::new(1),
                    }) as Box<dyn Process<u32>>
                } else {
                    Box::new(Sink {
                        received: Vec::new(),
                    })
                }
            });
        let trace = sim.run();
        assert_eq!(trace.stop_reason(), StopReason::MaxEvents);
        assert_eq!(trace.events().len(), 5);
        let recorded_sends = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Send { .. }))
            .count() as u64;
        assert_eq!(trace.stats().messages_sent, recorded_sends);
        assert_eq!(trace.stats().messages_delivered, 0);
    }

    /// A process that crashes itself upon receiving any message.
    struct CrashOnMessage;

    impl Process<u32> for CrashOnMessage {
        fn on_start(&mut self, _: &mut Context<'_, u32>) {}
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, _: u32) {
            ctx.crash_self();
            // Anything after the crash must be void:
            ctx.send(ProcessId::new(0), 99);
        }
    }

    #[test]
    fn no_events_after_crash() {
        let sim = Sim::<u32>::builder(2)
            .seed(3)
            .latency(FixedLatency(1))
            .build(|pid| {
                if pid.index() == 0 {
                    Box::new(Flooder {
                        count: 5,
                        target: ProcessId::new(1),
                    })
                } else {
                    Box::new(CrashOnMessage)
                }
            });
        let trace = sim.run();
        let p1 = ProcessId::new(1);
        let crash_seq = trace
            .events()
            .iter()
            .find_map(|e| match e.kind {
                TraceEventKind::Crash { pid } if pid == p1 => Some(e.seq),
                _ => None,
            })
            .expect("crash recorded");
        for e in trace.events() {
            if e.seq > crash_seq {
                assert_ne!(e.kind.process(), p1, "event after crash: {e}");
            }
        }
        // The four messages behind the first are not received.
        assert_eq!(trace.stats().messages_to_crashed, 4);
        assert_eq!(trace.stats().messages_delivered, 1);
    }

    #[test]
    fn injected_crash_halts_process_at_time() {
        let plan = FaultPlan::new().crash_at(ProcessId::new(0), VirtualTime::from_ticks(1));
        let sim = Sim::<u32>::builder(2)
            .latency(FixedLatency(10))
            .faults(plan)
            .build(|pid| {
                if pid.index() == 0 {
                    Box::new(Flooder {
                        count: 1,
                        target: ProcessId::new(1),
                    })
                } else {
                    Box::new(Sink {
                        received: Vec::new(),
                    })
                }
            });
        let trace = sim.run();
        // The message was sent at time 0, before the crash at time 1, and the
        // channel still delivers it (channels are non-faulty).
        assert_eq!(trace.stats().messages_delivered, 1);
        assert_eq!(trace.crashed(), vec![ProcessId::new(0)]);
    }

    #[test]
    fn declare_failed_is_idempotent_in_trace() {
        struct DoubleDeclarer;
        impl Process<u32> for DoubleDeclarer {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.declare_failed(ProcessId::new(1));
                ctx.declare_failed(ProcessId::new(1));
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let sim = Sim::<u32>::builder(2).build(|pid| {
            if pid.index() == 0 {
                Box::new(DoubleDeclarer)
            } else {
                Box::new(Sink {
                    received: Vec::new(),
                })
            }
        });
        let trace = sim.run();
        assert_eq!(
            trace.detections(),
            vec![(ProcessId::new(0), ProcessId::new(1))]
        );
    }

    #[test]
    fn held_message_blocks_channel_but_not_other_channels() {
        // p0 sends m0 to p1 held NEVER-long, then m1 normally: FIFO means m1
        // cannot overtake, so p1 receives nothing. p0->p2 is unaffected.
        struct TwoSends;
        impl Process<u32> for TwoSends {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(ProcessId::new(1), 0);
                ctx.send(ProcessId::new(1), 1);
                ctx.send(ProcessId::new(2), 2);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let model = OverrideLatency::new(FixedLatency(1)).hold(
            ProcessId::new(0),
            ProcessId::new(1),
            crate::latency::NEVER,
        );
        let sim = Sim::<u32>::builder(3)
            .latency(model)
            .max_time(VirtualTime::from_ticks(1_000))
            .build(|pid| {
                if pid.index() == 0 {
                    Box::new(TwoSends)
                } else {
                    Box::new(Sink {
                        received: Vec::new(),
                    })
                }
            });
        let trace = sim.run();
        assert_eq!(trace.stop_reason(), StopReason::MaxTime);
        let recv_targets: Vec<_> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { by, .. } => Some(by),
                _ => None,
            })
            .collect();
        assert_eq!(recv_targets, vec![ProcessId::new(2)]);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerUser {
            fired: u32,
        }
        impl Process<u32> for TimerUser {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let keep = ctx.set_timer(5);
                let cancel = ctx.set_timer(6);
                ctx.cancel_timer(cancel);
                let _ = keep;
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: TimerId) {
                self.fired += 1;
                if self.fired < 3 {
                    ctx.set_timer(5);
                }
            }
        }
        let sim = Sim::<u32>::builder(1).build(|_| Box::new(TimerUser { fired: 0 }));
        let trace = sim.run();
        assert_eq!(trace.stats().timers_fired, 3);
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
    }

    #[test]
    fn all_crashed_stops_run() {
        let plan = FaultPlan::new()
            .crash_at(ProcessId::new(0), VirtualTime::from_ticks(5))
            .crash_at(ProcessId::new(1), VirtualTime::from_ticks(6));
        let sim = Sim::<u32>::builder(2).faults(plan).build(|_| {
            Box::new(Sink {
                received: Vec::new(),
            })
        });
        let trace = sim.run();
        assert_eq!(trace.stop_reason(), StopReason::AllCrashed);
        assert_eq!(trace.crashed().len(), 2);
    }

    #[test]
    fn crash_registry_tracks_crashes_live() {
        let plan = FaultPlan::new().crash_at(ProcessId::new(1), VirtualTime::from_ticks(2));
        let sim = Sim::<u32>::builder(3).faults(plan).build(|_| {
            Box::new(Sink {
                received: Vec::new(),
            })
        });
        let registry = sim.crash_registry();
        assert!(!registry.is_crashed(ProcessId::new(1)));
        let _ = sim.run();
        assert!(registry.is_crashed(ProcessId::new(1)));
        assert_eq!(registry.crashed(), vec![ProcessId::new(1)]);
        // The non-allocating views agree with the vector variant.
        assert_eq!(
            registry.iter_crashed().collect::<Vec<_>>(),
            registry.crashed()
        );
        let mut visited = Vec::new();
        registry.for_each_crashed(|p| visited.push(p));
        assert_eq!(visited, vec![ProcessId::new(1)]);
    }

    /// A process that refuses odd messages until it sees the value 100.
    struct Picky {
        seen: Vec<u32>,
    }

    impl Process<u32> for Picky {
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            ctx.set_receive_filter(Some(ReceiveFilter::new(|m: &u32| m.is_multiple_of(2))));
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: ProcessId, msg: u32) {
            self.seen.push(msg);
            if msg == 100 {
                ctx.set_receive_filter(None);
            }
        }
    }

    #[test]
    fn receive_filter_parks_messages_in_fifo_order() {
        // p0 sends 1 (refused), 100 (accepted... but FIFO: 1 is at the head,
        // so 100 waits behind it), then nothing. The channel deadlocks on
        // the refused head until the filter is lifted — which here never
        // happens, so p1 sees nothing.
        struct SendOddThenEven;
        impl Process<u32> for SendOddThenEven {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(ProcessId::new(1), 1);
                ctx.send(ProcessId::new(1), 100);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let sim = Sim::<u32>::builder(2)
            .latency(FixedLatency(1))
            .build(|pid| {
                if pid.index() == 0 {
                    Box::new(SendOddThenEven)
                } else {
                    Box::new(Picky { seen: Vec::new() })
                }
            });
        let trace = sim.run();
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
        assert_eq!(
            trace.stats().messages_delivered,
            0,
            "head-of-line refusal blocks channel"
        );
    }

    #[test]
    fn receive_filter_releases_parked_messages_on_change() {
        // p0 sends 2 (accepted), 3 (refused -> parked), 100 (parked behind),
        // then p2 sends 100 which lifts the filter; 3 and 100 then arrive
        // in order.
        struct Script(usize);
        impl Process<u32> for Script {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                if self.0 == 0 {
                    ctx.send(ProcessId::new(1), 2);
                    ctx.send(ProcessId::new(1), 3);
                    ctx.send(ProcessId::new(1), 6);
                } else if self.0 == 2 {
                    // Arrives long after p0's messages.
                    let t = ctx.set_timer(100);
                    let _ = t;
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: TimerId) {
                ctx.send(ProcessId::new(1), 100);
            }
        }
        let sim = Sim::<u32>::builder(3)
            .latency(FixedLatency(1))
            .build(|pid| {
                if pid.index() == 1 {
                    Box::new(Picky { seen: Vec::new() })
                } else {
                    Box::new(Script(pid.index()))
                }
            });
        let trace = sim.run();
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
        let recvs: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { by, msg, .. } if by == ProcessId::new(1) => Some(msg.seq()),
                _ => None,
            })
            .collect();
        // p1 receives p0's m0 (=2), then p2's m0 (=100), then the parked
        // p0 m1 (=3) and m2 (=6) in FIFO order.
        assert_eq!(
            trace.stats().messages_delivered,
            4,
            "{}",
            trace.to_pretty_string()
        );
        let from_p0: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { by, from, msg, .. }
                    if by == ProcessId::new(1) && from == ProcessId::new(0) =>
                {
                    Some(msg.seq())
                }
                _ => None,
            })
            .collect();
        assert_eq!(from_p0, vec![0, 1, 2], "FIFO preserved through parking");
        let _ = recvs;
    }

    #[test]
    fn parked_messages_to_a_crashed_receiver_count_as_consumed() {
        use crate::process::ReceiveFilter;
        // p1 refuses everything, so p0's two messages park their channel
        // (no pending delivery attempt remains); p1 then crashes. The
        // parked copies must be consumed as messages_to_crashed — the
        // filter can never change again — so the quiescent run reports
        // its channels drained.
        struct Refuser;
        impl Process<u32> for Refuser {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_receive_filter(Some(ReceiveFilter::new(|_: &u32| false)));
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let plan = FaultPlan::new().crash_at(ProcessId::new(1), VirtualTime::from_ticks(20));
        let sim = Sim::<u32>::builder(2)
            .latency(FixedLatency(1))
            .faults(plan)
            .build(|pid| {
                if pid.index() == 0 {
                    Box::new(Flooder {
                        count: 2,
                        target: ProcessId::new(1),
                    }) as Box<dyn Process<u32>>
                } else {
                    Box::new(Refuser)
                }
            });
        let trace = sim.run();
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
        assert_eq!(trace.stats().messages_sent, 2);
        assert_eq!(trace.stats().messages_delivered, 0);
        assert_eq!(
            trace.stats().messages_to_crashed,
            2,
            "{}",
            trace.to_pretty_string()
        );
        assert!(trace.channels_drained(), "{}", trace.to_pretty_string());
    }

    #[test]
    fn duplicate_copies_outlive_a_partition_cut_after_the_verdict() {
        use crate::link::{FaultyLink, PartitionSchedule};
        // The Duplicate verdict is drawn once, at send time (tick 0); the
        // link is severed from tick 1 forever. A partition drops *new*
        // traffic at the cut, not the queue: both in-flight copies must
        // still deliver, and the accounting must balance.
        let link = FaultyLink::new(FixedLatency(30)).duplicate(1.0).partitions(
            PartitionSchedule::new().split(
                VirtualTime::from_ticks(1),
                VirtualTime::MAX,
                &[ProcessId::new(0)],
            ),
        );
        let sim = Sim::<u32>::builder(2).link(link).build(|pid| {
            Box::new(Flooder {
                count: if pid.index() == 0 { 1 } else { 0 },
                target: ProcessId::new(1 - pid.index()),
            })
        });
        let trace = sim.run();
        assert_eq!(trace.stats().messages_sent, 1);
        assert_eq!(trace.stats().messages_duplicated, 1);
        assert_eq!(
            trace.stats().messages_delivered,
            2,
            "{}",
            trace.to_pretty_string()
        );
        assert!(trace.channels_drained());
        // Both copies arrived while the link was already severed.
        for e in trace.events() {
            if matches!(e.kind, TraceEventKind::Recv { .. }) {
                assert!(e.time >= VirtualTime::from_ticks(1), "{e}");
            }
        }
    }

    #[test]
    fn duplicated_parked_copies_at_a_crashed_receiver_still_balance() {
        use crate::link::FaultyLink;
        use crate::process::ReceiveFilter;
        // Duplicate verdict -> two parked copies -> receiver crashes.
        // Both copies are consumed at the crash:
        // sent + duplicated == to_crashed.
        struct Refuser;
        impl Process<u32> for Refuser {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.set_receive_filter(Some(ReceiveFilter::new(|_: &u32| false)));
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
        }
        let link = FaultyLink::new(FixedLatency(1)).duplicate(1.0);
        let plan = FaultPlan::new().crash_at(ProcessId::new(1), VirtualTime::from_ticks(20));
        let sim = Sim::<u32>::builder(2).link(link).faults(plan).build(|pid| {
            if pid.index() == 0 {
                Box::new(Flooder {
                    count: 1,
                    target: ProcessId::new(1),
                }) as Box<dyn Process<u32>>
            } else {
                Box::new(Refuser)
            }
        });
        let trace = sim.run();
        assert_eq!(trace.stats().messages_sent, 1);
        assert_eq!(trace.stats().messages_duplicated, 1);
        assert_eq!(
            trace.stats().messages_to_crashed,
            2,
            "{}",
            trace.to_pretty_string()
        );
        assert!(trace.channels_drained());
    }

    /// Per-process projection of a trace: the sequence of events each
    /// process executes, as `Debug` text.
    fn projections(trace: &Trace) -> Vec<Vec<String>> {
        let mut per: Vec<Vec<String>> = (0..trace.n()).map(|_| Vec::new()).collect();
        for e in trace.events() {
            per[e.kind.process().index()].push(format!("{:?}", e.kind));
        }
        per
    }

    #[test]
    fn batched_flush_preserves_per_process_order() {
        // Three flooders target one sink with fixed latency, so every
        // delivery of a wave comes due at the same tick and the batched
        // run actually coalesces. Every process must still observe
        // exactly the unbatched event sequence.
        fn run(batch: bool) -> Trace {
            let sim = Sim::<u32>::builder(4)
                .seed(11)
                .batch_deliveries(batch)
                .latency(FixedLatency(3))
                .build(|pid| {
                    if pid.index() < 3 {
                        Box::new(Flooder {
                            count: 10,
                            target: ProcessId::new(3),
                        }) as Box<dyn Process<u32>>
                    } else {
                        Box::new(Sink {
                            received: Vec::new(),
                        })
                    }
                });
            sim.run()
        }
        let plain = run(false);
        let batched = run(true);
        assert_eq!(plain.stop_reason(), batched.stop_reason());
        assert_eq!(projections(&plain), projections(&batched));
        // Stronger still: the batched run is byte-identical (same events,
        // same order, same timestamps) — pop-order execution guarantees
        // the shared rng is consumed identically.
        assert_eq!(plain.events(), batched.events());
        assert_eq!(plain.stats().messages_sent, batched.stats().messages_sent);
        assert!(
            batched.stats().delivery_batches > 0,
            "the flush must observe coalescable runs"
        );
        assert_eq!(plain.stats().delivery_batches, 0);
    }

    #[test]
    fn batched_flush_handles_crashes_and_timers() {
        // Mixed steps in one flush (timers + deliveries + an injected
        // crash) keep per-process order and stats coherent.
        fn run(batch: bool) -> Trace {
            let plan = FaultPlan::new().crash_at(ProcessId::new(2), VirtualTime::from_ticks(4));
            let sim = Sim::<u32>::builder(3)
                .seed(5)
                .batch_deliveries(batch)
                .latency(FixedLatency(4))
                .faults(plan)
                .build(|pid| {
                    if pid.index() == 0 {
                        Box::new(Flooder {
                            count: 6,
                            target: ProcessId::new(2),
                        }) as Box<dyn Process<u32>>
                    } else {
                        Box::new(Sink {
                            received: Vec::new(),
                        })
                    }
                });
            sim.run()
        }
        let plain = run(false);
        let batched = run(true);
        assert_eq!(projections(&plain), projections(&batched));
        assert_eq!(plain.events(), batched.events());
        assert_eq!(plain.stats().crashes, batched.stats().crashes);
        assert_eq!(
            plain.stats().messages_to_crashed,
            batched.stats().messages_to_crashed
        );
    }

    #[test]
    fn link_model_drops_and_duplicates_at_send_time() {
        use crate::link::{FnLink, LinkVerdict};

        // Scripted verdicts: drop the 1st send, duplicate the 2nd,
        // deliver the 3rd — the sim must count and deliver accordingly.
        let mut k = 0u32;
        let link = FnLink(move |_, _, _, _: &mut StdRng| {
            k += 1;
            match k {
                1 => LinkVerdict::Drop,
                2 => LinkVerdict::Duplicate(1, 2),
                _ => LinkVerdict::Deliver(1),
            }
        });
        let sim = Sim::<u32>::builder(2).link(link).build(|pid| {
            if pid.index() == 0 {
                Box::new(Flooder {
                    count: 3,
                    target: ProcessId::new(1),
                }) as Box<dyn Process<u32>>
            } else {
                Box::new(Sink {
                    received: Vec::new(),
                })
            }
        });
        let trace = sim.run();
        let stats = trace.stats();
        assert_eq!(stats.messages_sent, 3);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_duplicated, 1);
        // One send lost, one delivered twice, one delivered once.
        assert_eq!(stats.messages_delivered, 3);
        assert!(trace.channels_drained());
        let seqs: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recv { msg, .. } => Some(msg.seq()),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![1, 1, 2], "dup copies arrive back to back");
    }

    #[test]
    fn healed_partition_drops_during_the_window_only() {
        use crate::link::{FaultyLink, PartitionSchedule};

        // p0 re-sends every 10 ticks; {p0 | p1} are split for [0, 35), so
        // the first sends are lost and later ones arrive.
        struct Resender;
        impl Process<u32> for Resender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                ctx.send(ProcessId::new(1), 0);
                ctx.set_timer(10);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, _: ProcessId, _: u32) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _: TimerId) {
                ctx.send(ProcessId::new(1), 1);
                if ctx.now() < VirtualTime::from_ticks(60) {
                    ctx.set_timer(10);
                }
            }
        }
        let link = FaultyLink::new(FixedLatency(1)).partitions(PartitionSchedule::new().split(
            VirtualTime::ZERO,
            VirtualTime::from_ticks(35),
            &[ProcessId::new(0)],
        ));
        let sim = Sim::<u32>::builder(2).link(link).build(|pid| {
            if pid.index() == 0 {
                Box::new(Resender) as Box<dyn Process<u32>>
            } else {
                Box::new(Sink {
                    received: Vec::new(),
                })
            }
        });
        let trace = sim.run();
        let stats = trace.stats();
        // Sends at 0, 10, 20, 30 are severed; 40, 50, 60 get through.
        assert_eq!(stats.messages_dropped, 4, "{}", trace.to_pretty_string());
        assert_eq!(stats.messages_delivered, 3);
        assert_eq!(trace.stop_reason(), StopReason::Quiescent);
    }

    #[test]
    fn self_send_is_delivered() {
        struct SelfSender {
            got: bool,
        }
        impl Process<u32> for SelfSender {
            fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
                let me = ctx.id();
                ctx.send(me, 1);
            }
            fn on_message(&mut self, _: &mut Context<'_, u32>, from: ProcessId, _: u32) {
                assert_eq!(from.index(), 0);
                self.got = true;
            }
        }
        let sim = Sim::<u32>::builder(1).build(|_| Box::new(SelfSender { got: false }));
        let trace = sim.run();
        assert_eq!(trace.stats().messages_delivered, 1);
    }
}
