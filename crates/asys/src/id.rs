//! Identifier newtypes for processes, messages, and timers.
//!
//! The paper models the system as a set of processes `P = {1, 2, ..., n}`
//! communicating over unidirectional FIFO channels, with every message
//! unique ("they can easily be made so by including in m its source and a
//! sequence number"). [`MsgId`] is exactly that construction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a process in the system `P = {0, 1, ..., n-1}`.
///
/// The paper numbers processes from 1; we use zero-based indices so ids can
/// directly index per-process tables.
///
/// # Examples
///
/// ```
/// use sfs_asys::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from a zero-based index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the zero-based index of this process.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all process ids of an `n`-process system, in order.
    ///
    /// # Examples
    ///
    /// ```
    /// use sfs_asys::ProcessId;
    /// let all: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(all.len(), 3);
    /// assert_eq!(all[2], ProcessId::new(2));
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// Globally unique message identity: sender plus a per-sender sequence
/// number, mirroring the paper's uniqueness construction.
///
/// # Examples
///
/// ```
/// use sfs_asys::{MsgId, ProcessId};
///
/// let m = MsgId::new(ProcessId::new(1), 7);
/// assert_eq!(m.source(), ProcessId::new(1));
/// assert_eq!(m.seq(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    source: ProcessId,
    seq: u64,
}

impl MsgId {
    /// Creates a message id from its source process and per-source sequence
    /// number.
    pub const fn new(source: ProcessId, seq: u64) -> Self {
        MsgId { source, seq }
    }

    /// The process that sent the message.
    pub const fn source(self) -> ProcessId {
        self.source
    }

    /// The per-source sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}.{}", self.source.index(), self.seq)
    }
}

/// Identity of a timer registered with the simulation engine or the
/// threaded runtime. Timer ids are unique within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerId(u64);

impl TimerId {
    /// Creates a timer id from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        TimerId(raw)
    }

    /// The raw counter value backing this id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        for i in 0..10 {
            assert_eq!(ProcessId::new(i).index(), i);
            assert_eq!(ProcessId::from(i), ProcessId::new(i));
        }
    }

    #[test]
    fn process_id_ordering_matches_index() {
        assert!(ProcessId::new(0) < ProcessId::new(1));
        assert!(ProcessId::new(5) > ProcessId::new(4));
    }

    #[test]
    fn all_yields_n_ids_in_order() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            ids,
            vec![
                ProcessId::new(0),
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(3)
            ]
        );
    }

    #[test]
    fn msg_id_uniqueness_by_source_and_seq() {
        let a = MsgId::new(ProcessId::new(0), 1);
        let b = MsgId::new(ProcessId::new(0), 2);
        let c = MsgId::new(ProcessId::new(1), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, MsgId::new(ProcessId::new(0), 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId::new(2).to_string(), "p2");
        assert_eq!(MsgId::new(ProcessId::new(2), 9).to_string(), "m2.9");
        assert_eq!(TimerId::new(3).to_string(), "t3");
    }
}
