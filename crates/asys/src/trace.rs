//! Execution traces: the finite, observable prefix of a run.
//!
//! A [`Trace`] is the chronologically ordered record of everything the
//! simulator (or threaded runtime) did: sends, receives, crashes, failure
//! detections, timer firings, injections, and protocol annotations. The
//! formal-history crate projects a trace onto the paper's event alphabet
//! (`send`, `recv`, `crash`, `failed`); property checkers consume traces
//! directly.

use crate::id::{MsgId, ProcessId, TimerId};
use crate::note::Note;
use crate::time::VirtualTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// Process `from` appended message `msg` to channel `C_{from,to}`.
    Send {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Unique message id.
        msg: MsgId,
        /// Whether the payload is infrastructure (protocol-internal)
        /// rather than a model-level application message; see
        /// `SimBuilder::classify`.
        infra: bool,
        /// `Debug` rendering of the payload, when payload recording is on.
        payload: Option<String>,
    },
    /// Process `by` removed message `msg` from the head of `C_{from,by}`.
    Recv {
        /// Receiver.
        by: ProcessId,
        /// Original sender.
        from: ProcessId,
        /// Unique message id.
        msg: MsgId,
        /// Whether the payload is infrastructure (protocol-internal);
        /// mirrors the flag recorded at the send.
        infra: bool,
        /// `Debug` rendering of the payload, when payload recording is on.
        payload: Option<String>,
    },
    /// `crash_pid`: the process halted permanently.
    Crash {
        /// The crashed process.
        pid: ProcessId,
    },
    /// `failed_by(of)`: process `by` detected (possibly erroneously) the
    /// failure of process `of`.
    Failed {
        /// The detecting process.
        by: ProcessId,
        /// The detected process.
        of: ProcessId,
    },
    /// A timer registered by `pid` fired.
    TimerFired {
        /// Owner of the timer.
        pid: ProcessId,
        /// The timer.
        timer: TimerId,
    },
    /// An environment injection (e.g. a forced suspicion) was delivered to
    /// `pid`.
    External {
        /// Target of the injection.
        pid: ProcessId,
        /// `Debug` rendering of the payload, when payload recording is on.
        payload: Option<String>,
    },
    /// A protocol annotation; never affects execution.
    Note {
        /// The annotating process.
        pid: ProcessId,
        /// The annotation.
        note: Note,
    },
}

impl TraceEventKind {
    /// The process whose local state the event changes (for notes and
    /// externals, the process it is attached to).
    pub fn process(&self) -> ProcessId {
        match *self {
            TraceEventKind::Send { from, .. } => from,
            TraceEventKind::Recv { by, .. } => by,
            TraceEventKind::Crash { pid } => pid,
            TraceEventKind::Failed { by, .. } => by,
            TraceEventKind::TimerFired { pid, .. } => pid,
            TraceEventKind::External { pid, .. } => pid,
            TraceEventKind::Note { pid, .. } => pid,
        }
    }
}

/// One recorded event, with its position and virtual timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Zero-based position in the trace; unique and dense.
    pub seq: usize,
    /// Virtual time at which the event occurred.
    pub time: VirtualTime,
    /// What happened.
    pub kind: TraceEventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] ", self.seq, self.time)?;
        match &self.kind {
            TraceEventKind::Send { from, to, msg, .. } => write!(f, "send {from}->{to} {msg}"),
            TraceEventKind::Recv { by, from, msg, .. } => write!(f, "recv {by}<-{from} {msg}"),
            TraceEventKind::Crash { pid } => write!(f, "crash {pid}"),
            TraceEventKind::Failed { by, of } => write!(f, "failed {by}({of})"),
            TraceEventKind::TimerFired { pid, timer } => write!(f, "timer {pid} {timer}"),
            TraceEventKind::External { pid, .. } => write!(f, "external {pid}"),
            TraceEventKind::Note { pid, note } => write!(f, "note {pid} {note}"),
        }
    }
}

/// Why a simulation run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// No pending deliveries, timers, or injections remain. For safety
    /// properties this is as good as an infinite run: nothing further can
    /// happen.
    Quiescent,
    /// The configured virtual-time horizon was reached.
    MaxTime,
    /// The configured event budget was exhausted.
    MaxEvents,
    /// The scheduled-mode step budget ([`SimConfig::max_steps`]) was
    /// exhausted — the schedule explorer's depth bound.
    ///
    /// [`SimConfig::max_steps`]: crate::sim::SimConfig::max_steps
    MaxSteps,
    /// Every process has crashed ("total failure" in the sense of \[Ske85\]).
    AllCrashed,
}

impl StopReason {
    /// Whether the run ended because nothing more could happen, i.e. the
    /// finite prefix is maximal and eventually-properties can be judged.
    pub fn is_complete(self) -> bool {
        matches!(self, StopReason::Quiescent | StopReason::AllCrashed)
    }
}

/// Aggregate counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Messages appended to channels.
    pub messages_sent: u64,
    /// Messages removed from channels and handed to a live process.
    pub messages_delivered: u64,
    /// Messages that reached a crashed process and were discarded.
    pub messages_to_crashed: u64,
    /// Messages lost by the link model ([`LinkVerdict::Drop`]) — severed
    /// partitions and i.i.d. loss both count here. Always zero under a
    /// pure latency model.
    ///
    /// [`LinkVerdict::Drop`]: crate::link::LinkVerdict::Drop
    pub messages_dropped: u64,
    /// Messages duplicated by the link model
    /// ([`LinkVerdict::Duplicate`]): one per duplicated send (the extra
    /// copy is not re-counted in [`SimStats::messages_sent`], which
    /// counts sends, but each delivered copy counts in
    /// [`SimStats::messages_delivered`]).
    ///
    /// [`LinkVerdict::Duplicate`]: crate::link::LinkVerdict::Duplicate
    pub messages_duplicated: u64,
    /// Timer firings delivered.
    pub timers_fired: u64,
    /// Crash events (injected or self-inflicted).
    pub crashes: u64,
    /// Failure detections declared.
    pub detections: u64,
    /// Batching-fast-path counter. On the threaded router: multi-event
    /// per-destination batches actually coalesced into one channel send.
    /// On the simulator's batched flush: same-instant same-destination
    /// runs of *admissible* events (live target, uncancelled timer,
    /// unrefused head — judged at flush admission) that a batching
    /// transport would so coalesce; execution itself stays in pop order
    /// there. Zero when batching is off; purely an engine-mechanics
    /// counter — batching never changes any of the other counters.
    pub delivery_batches: u64,
    /// Total bytes the run's sends would put on a real wire, under the
    /// measure installed via `SimBuilder::measure` (the engines) or
    /// counted from actual datagrams (the UDP backend). Charged once per
    /// send, on the sender's side: duplicated and dropped copies are the
    /// network's doing, not the protocol's spend. Zero when no measure
    /// is installed.
    pub wire_bytes: u64,
}

/// The full record of one run: every event in order, plus outcome metadata.
///
/// # Examples
///
/// ```
/// use sfs_asys::{Trace, TraceEventKind};
///
/// fn count_crashes(trace: &Trace) -> usize {
///     trace.events().iter()
///         .filter(|e| matches!(e.kind, TraceEventKind::Crash { .. }))
///         .count()
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    n: usize,
    events: Vec<TraceEvent>,
    stop: StopReason,
    end_time: VirtualTime,
    stats: SimStats,
}

impl Trace {
    /// Assembles a trace from its parts. Intended for the simulation engine
    /// and for tests that build traces by hand.
    pub fn from_parts(
        n: usize,
        events: Vec<TraceEvent>,
        stop: StopReason,
        end_time: VirtualTime,
        stats: SimStats,
    ) -> Self {
        Trace {
            n,
            events,
            stop,
            end_time,
            stats,
        }
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// All recorded events, in chronological order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Why the run stopped.
    pub fn stop_reason(&self) -> StopReason {
        self.stop
    }

    /// Virtual time when the run stopped.
    pub fn end_time(&self) -> VirtualTime {
        self.end_time
    }

    /// Aggregate counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Whether every sent message was consumed by the end of the trace —
    /// delivered to a live process or discarded at a crashed one. For a
    /// timer-free system this is message quiescence: the post-hoc signal
    /// that a wall-clock-bounded run (the threaded runtime stops with
    /// [`StopReason::MaxTime`] on shutdown) had in fact nothing left to
    /// do, so its finite prefix is maximal and comparable to a
    /// [`StopReason::Quiescent`] simulator run. A message parked behind a
    /// receive filter counts as undrained, as it should: the system was
    /// still waiting on it — unless the receiver has crashed, in which
    /// case both engines consume the parked copies as
    /// [`SimStats::messages_to_crashed`] (the filter can never change
    /// again). Duplicate copies are unaffected by partitions that begin
    /// after the verdict: the link is consulted once per send, so both
    /// copies stay in flight and are consumed like any others.
    pub fn channels_drained(&self) -> bool {
        // Each send puts 0 (dropped), 1, or 2 (duplicated) copies on a
        // channel; drained means every copy was consumed.
        self.stats.messages_sent + self.stats.messages_duplicated
            == self.stats.messages_delivered
                + self.stats.messages_to_crashed
                + self.stats.messages_dropped
    }

    /// Processes that crashed during the run, in crash order.
    pub fn crashed(&self) -> Vec<ProcessId> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Crash { pid } => Some(pid),
                _ => None,
            })
            .collect()
    }

    /// All `failed_by(of)` detections, in order.
    pub fn detections(&self) -> Vec<(ProcessId, ProcessId)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Failed { by, of } => Some((by, of)),
                _ => None,
            })
            .collect()
    }

    /// All notes with the given key, with the seq of the note event.
    pub fn notes_with_key<'a>(
        &'a self,
        key: &'a str,
    ) -> impl Iterator<Item = (usize, ProcessId, &'a Note)> + 'a {
        self.events.iter().filter_map(move |e| match &e.kind {
            TraceEventKind::Note { pid, note } if note.key() == key => Some((e.seq, *pid, note)),
            _ => None,
        })
    }

    /// Renders the trace as one event per line; useful in test failures.
    pub fn to_pretty_string(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for e in &self.events {
            let _ = writeln!(s, "{e}");
        }
        let _ = writeln!(s, "-- stop: {:?} at {}", self.stop, self.end_time);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let events = vec![
            TraceEvent {
                seq: 0,
                time: VirtualTime::from_ticks(1),
                kind: TraceEventKind::Send {
                    from: p0,
                    to: p1,
                    msg: MsgId::new(p0, 0),
                    infra: false,
                    payload: None,
                },
            },
            TraceEvent {
                seq: 1,
                time: VirtualTime::from_ticks(2),
                kind: TraceEventKind::Recv {
                    by: p1,
                    from: p0,
                    msg: MsgId::new(p0, 0),
                    infra: false,
                    payload: None,
                },
            },
            TraceEvent {
                seq: 2,
                time: VirtualTime::from_ticks(3),
                kind: TraceEventKind::Failed { by: p1, of: p0 },
            },
            TraceEvent {
                seq: 3,
                time: VirtualTime::from_ticks(4),
                kind: TraceEventKind::Crash { pid: p0 },
            },
        ];
        Trace::from_parts(
            2,
            events,
            StopReason::Quiescent,
            VirtualTime::from_ticks(4),
            SimStats::default(),
        )
    }

    #[test]
    fn crashed_and_detections_extract() {
        let t = sample();
        assert_eq!(t.crashed(), vec![ProcessId::new(0)]);
        assert_eq!(t.detections(), vec![(ProcessId::new(1), ProcessId::new(0))]);
    }

    #[test]
    fn stop_reason_completeness() {
        assert!(StopReason::Quiescent.is_complete());
        assert!(StopReason::AllCrashed.is_complete());
        assert!(!StopReason::MaxTime.is_complete());
        assert!(!StopReason::MaxEvents.is_complete());
    }

    #[test]
    fn event_process_attribution() {
        let t = sample();
        let procs: Vec<_> = t
            .events()
            .iter()
            .map(|e| e.kind.process().index())
            .collect();
        assert_eq!(procs, vec![0, 1, 1, 0]);
    }

    #[test]
    fn pretty_string_mentions_every_event() {
        let t = sample();
        let s = t.to_pretty_string();
        assert!(s.contains("send p0->p1"));
        assert!(s.contains("failed p1(p0)"));
        assert!(s.contains("crash p0"));
    }
}
