//! Fault and stimulus injection.
//!
//! A [`FaultPlan`] scripts the environment: crash a process at a chosen
//! virtual time, or deliver an *external* stimulus to a process (the hook
//! the simulated-fail-stop protocol uses for "process `i` suspects the
//! failure of `j`, e.g. due to a timeout at a lower level"). Injections are
//! part of the run's deterministic schedule.

use crate::id::ProcessId;
use crate::time::VirtualTime;

/// One scripted environment action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injection<M> {
    /// Halt the process permanently at the scheduled time.
    Crash,
    /// Invoke the process's `on_external` hook with the payload.
    External(M),
}

/// A scripted schedule of environment actions for one run.
///
/// # Examples
///
/// ```
/// use sfs_asys::{FaultPlan, ProcessId, VirtualTime};
///
/// let plan: FaultPlan<String> = FaultPlan::new()
///     .crash_at(ProcessId::new(2), VirtualTime::from_ticks(50))
///     .external_at(ProcessId::new(0), VirtualTime::from_ticks(10), "suspect p2".into());
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan<M> {
    items: Vec<(VirtualTime, ProcessId, Injection<M>)>,
}

impl<M> FaultPlan<M> {
    /// An empty plan: no environment interference.
    pub fn new() -> Self {
        FaultPlan { items: Vec::new() }
    }

    /// Schedules a crash of `pid` at `time`.
    pub fn crash_at(mut self, pid: ProcessId, time: VirtualTime) -> Self {
        self.items.push((time, pid, Injection::Crash));
        self
    }

    /// Schedules an external stimulus for `pid` at `time`.
    pub fn external_at(mut self, pid: ProcessId, time: VirtualTime, payload: M) -> Self {
        self.items.push((time, pid, Injection::External(payload)));
        self
    }

    /// Number of scheduled injections.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consumes the plan, yielding the scheduled items (unsorted; the
    /// engine orders them into its event queue).
    pub fn into_items(self) -> Vec<(VirtualTime, ProcessId, Injection<M>)> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_accumulates_in_insertion_order() {
        let plan: FaultPlan<u8> = FaultPlan::new()
            .crash_at(ProcessId::new(1), VirtualTime::from_ticks(5))
            .external_at(ProcessId::new(0), VirtualTime::from_ticks(2), 42);
        let items = plan.into_items();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, VirtualTime::from_ticks(5));
        assert!(matches!(items[0].2, Injection::Crash));
        assert!(matches!(items[1].2, Injection::External(42)));
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan: FaultPlan<u8> = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }
}
