//! Message latency models: how asynchrony is realized.
//!
//! In an asynchronous system, message delay is unbounded and chosen by an
//! adversary. The simulator makes that adversary explicit: every sent
//! message asks the run's [`LatencyModel`] for a delay. Random models
//! explore "typical" asynchrony; rule-based models implement the paper's
//! adversarial constructions ("the messages sent to the processes in set
//! `S_{i-1}` are delayed indefinitely", Appendix A.3). FIFO order is
//! enforced by the engine regardless of the delays chosen here, matching
//! the paper's channel axioms.

use crate::id::ProcessId;
use crate::time::VirtualTime;
use rand::rngs::StdRng;
use rand::Rng;

/// Horizon used by adversarial models to mean "delayed past the end of any
/// finite experiment" — the finite-prefix rendering of *indefinitely*.
pub const NEVER: u64 = u64::MAX / 4;

/// Why a latency-model configuration is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyError {
    /// The range is inverted: `min > max`.
    InvertedRange {
        /// Requested minimum delay.
        min: u64,
        /// Requested maximum delay.
        max: u64,
    },
}

impl std::fmt::Display for LatencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LatencyError::InvertedRange { min, max } => {
                write!(f, "uniform latency requires min <= max, got [{min}, {max}]")
            }
        }
    }
}

impl std::error::Error for LatencyError {}

/// Chooses a delivery delay (in ticks) for each sent message.
pub trait LatencyModel {
    /// Delay for a message sent `from -> to` at time `now`.
    fn latency(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: VirtualTime,
        rng: &mut StdRng,
    ) -> u64;
}

/// Every message takes exactly `0` extra ticks beyond the minimum of 1.
/// Deliveries become a breadth-first expansion; useful for golden tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedLatency(pub u64);

impl LatencyModel for FixedLatency {
    fn latency(&mut self, _: ProcessId, _: ProcessId, _: VirtualTime, _: &mut StdRng) -> u64 {
        self.0.max(1)
    }
}

/// Uniformly random delay in `[min, max]`; the standard "benign asynchrony"
/// workload for the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformLatency {
    /// Minimum delay in ticks (clamped to at least 1).
    pub min: u64,
    /// Maximum delay in ticks.
    pub max: u64,
}

impl UniformLatency {
    /// Creates a uniform model over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`; [`UniformLatency::try_new`] returns the
    /// typed [`LatencyError`] instead.
    pub fn new(min: u64, max: u64) -> Self {
        Self::try_new(min, max).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`UniformLatency::new`]: an inverted range comes
    /// back as a typed error instead of a panic, so configuration layers
    /// (e.g. `ClusterSpec::validate` in `sfs`) can surface it.
    ///
    /// # Errors
    ///
    /// [`LatencyError::InvertedRange`] when `min > max`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sfs_asys::{LatencyError, UniformLatency};
    ///
    /// assert!(UniformLatency::try_new(1, 10).is_ok());
    /// assert_eq!(
    ///     UniformLatency::try_new(5, 2),
    ///     Err(LatencyError::InvertedRange { min: 5, max: 2 })
    /// );
    /// ```
    pub fn try_new(min: u64, max: u64) -> Result<Self, LatencyError> {
        if min > max {
            return Err(LatencyError::InvertedRange { min, max });
        }
        Ok(UniformLatency { min, max })
    }
}

impl LatencyModel for UniformLatency {
    fn latency(&mut self, _: ProcessId, _: ProcessId, _: VirtualTime, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.min.max(1)..=self.max.max(1))
    }
}

/// A directed-pair override on top of a base model: selected channels get a
/// fixed latency (typically [`NEVER`]); everything else falls through.
///
/// This is the paper's Appendix A.3 adversary: to build a `k`-cycle in the
/// failed-before relation, the messages `SUSP_{i, i⊕1}` sent to the set
/// `S_{i⊖1}` are "delayed indefinitely".
#[derive(Debug)]
pub struct OverrideLatency<B> {
    base: B,
    overrides: Vec<(ProcessId, ProcessId, u64)>,
}

impl<B: LatencyModel> OverrideLatency<B> {
    /// Wraps `base` with an empty override table.
    pub fn new(base: B) -> Self {
        OverrideLatency {
            base,
            overrides: Vec::new(),
        }
    }

    /// Forces messages `from -> to` to take `delay` ticks.
    pub fn hold(mut self, from: ProcessId, to: ProcessId, delay: u64) -> Self {
        self.overrides.push((from, to, delay));
        self
    }

    /// Forces messages from `from` to every process in `targets` to take
    /// `delay` ticks.
    pub fn hold_set(mut self, from: ProcessId, targets: &[ProcessId], delay: u64) -> Self {
        for &t in targets {
            self.overrides.push((from, t, delay));
        }
        self
    }
}

impl<B: LatencyModel> LatencyModel for OverrideLatency<B> {
    fn latency(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: VirtualTime,
        rng: &mut StdRng,
    ) -> u64 {
        for &(f, t, d) in &self.overrides {
            if f == from && t == to {
                return d.max(1);
            }
        }
        self.base.latency(from, to, now, rng)
    }
}

/// Arbitrary closure-backed model, for scripted scenarios.
pub struct FnLatency<F>(pub F);

impl<F> LatencyModel for FnLatency<F>
where
    F: FnMut(ProcessId, ProcessId, VirtualTime, &mut StdRng) -> u64,
{
    fn latency(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: VirtualTime,
        rng: &mut StdRng,
    ) -> u64 {
        (self.0)(from, to, now, rng).max(1)
    }
}

// Generic over every closure type, not just the bare fn-pointer
// instantiation, so runs configured with capturing closures stay
// derivable-`Debug` all the way up the generic stack.
impl<F> std::fmt::Debug for FnLatency<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnLatency").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_latency_is_at_least_one() {
        let mut m = FixedLatency(0);
        let mut r = rng();
        assert_eq!(
            m.latency(
                ProcessId::new(0),
                ProcessId::new(1),
                VirtualTime::ZERO,
                &mut r
            ),
            1
        );
    }

    #[test]
    fn uniform_latency_stays_in_range() {
        let mut m = UniformLatency::new(2, 9);
        let mut r = rng();
        for _ in 0..200 {
            let d = m.latency(
                ProcessId::new(0),
                ProcessId::new(1),
                VirtualTime::ZERO,
                &mut r,
            );
            assert!((2..=9).contains(&d), "delay {d} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_latency_rejects_inverted_range() {
        let _ = UniformLatency::new(5, 2);
    }

    #[test]
    fn try_new_reports_inverted_ranges_as_typed_errors() {
        assert_eq!(UniformLatency::try_new(2, 9), Ok(UniformLatency::new(2, 9)));
        assert_eq!(
            UniformLatency::try_new(9, 2),
            Err(LatencyError::InvertedRange { min: 9, max: 2 })
        );
        assert_eq!(
            LatencyError::InvertedRange { min: 9, max: 2 }.to_string(),
            "uniform latency requires min <= max, got [9, 2]"
        );
    }

    #[test]
    fn fn_latency_is_debug_for_capturing_closures() {
        // The Debug impl must cover arbitrary closure types, not just the
        // bare fn-pointer instantiation: a capturing closure exercises it.
        let base = 3u64;
        let m =
            FnLatency(move |_: ProcessId, _: ProcessId, _: VirtualTime, _: &mut StdRng| base + 1);
        assert!(format!("{m:?}").contains("FnLatency"));
    }

    #[test]
    fn override_latency_applies_to_selected_pair_only() {
        let mut m =
            OverrideLatency::new(FixedLatency(3)).hold(ProcessId::new(0), ProcessId::new(1), NEVER);
        let mut r = rng();
        assert_eq!(
            m.latency(
                ProcessId::new(0),
                ProcessId::new(1),
                VirtualTime::ZERO,
                &mut r
            ),
            NEVER
        );
        assert_eq!(
            m.latency(
                ProcessId::new(1),
                ProcessId::new(0),
                VirtualTime::ZERO,
                &mut r
            ),
            3
        );
        assert_eq!(
            m.latency(
                ProcessId::new(0),
                ProcessId::new(2),
                VirtualTime::ZERO,
                &mut r
            ),
            3
        );
    }

    #[test]
    fn hold_set_covers_all_targets() {
        let targets = [ProcessId::new(2), ProcessId::new(3)];
        let mut m =
            OverrideLatency::new(FixedLatency(1)).hold_set(ProcessId::new(0), &targets, 500);
        let mut r = rng();
        for &t in &targets {
            assert_eq!(
                m.latency(ProcessId::new(0), t, VirtualTime::ZERO, &mut r),
                500
            );
        }
        assert_eq!(
            m.latency(
                ProcessId::new(0),
                ProcessId::new(1),
                VirtualTime::ZERO,
                &mut r
            ),
            1
        );
    }

    #[test]
    fn fn_latency_clamps_to_one() {
        let mut m = FnLatency(|_, _, _, _: &mut StdRng| 0u64);
        let mut r = rng();
        assert_eq!(
            m.latency(
                ProcessId::new(0),
                ProcessId::new(0),
                VirtualTime::ZERO,
                &mut r
            ),
            1
        );
    }
}
