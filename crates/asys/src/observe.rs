//! The telemetry seam: a pluggable, **execution-neutral** observer every
//! engine can feed without changing what it executes.
//!
//! The contract mirrors the classifier and measure hooks: an attached
//! [`ObsSink`] is *called* from the engines' hot paths but has no channel
//! back into them — it receives copies of already-decided facts (a send
//! happened, a delivery cost `k` ticks, the wheel holds `m` deadlines)
//! and may not touch the shared rng, virtual time, or any scheduling
//! state. An obs-enabled run is therefore byte-identical to a bare run
//! on the simulator and HB-fingerprint-identical on every backend; the
//! `sfs-apps` equivalence tests and the E10 `sim:obs` conformance leg
//! pin exactly that.
//!
//! The event alphabet is deliberately small and type-erased: engines
//! report `(node, message-class, metric name, value)` triples and the
//! `sfs-obs` crate gives them meaning (counters, gauges, log-bucketed
//! histograms, flight-recorder rings). Keeping the vocabulary here — in
//! the substrate crate — lets the simulator, the threaded router, and
//! the wire backends share one seam without depending on the telemetry
//! implementation.

use crate::id::ProcessId;
use std::fmt;
use std::sync::Arc;

/// Message-class attribution for a metric sample, mirroring the
/// engines' infrastructure classifier: [`MsgClass::App`] is model-level
/// traffic, [`MsgClass::Infra`] is detector/transport machinery, and
/// [`MsgClass::None`] tags samples that are not about a message at all
/// (timers, queue depths, wall-time splits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgClass {
    /// Application (model-level) traffic.
    App,
    /// Infrastructure traffic (heartbeats, obituaries, wire frames).
    Infra,
    /// Not message-attributed.
    None,
}

impl MsgClass {
    /// The class the engines' boolean `infra` flag denotes.
    pub fn from_infra(infra: bool) -> Self {
        if infra {
            MsgClass::Infra
        } else {
            MsgClass::App
        }
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::App => "app",
            MsgClass::Infra => "infra",
            MsgClass::None => "-",
        }
    }
}

/// One telemetry fact, emitted by an engine into the attached sink.
///
/// The three shapes cover the registry's instrument kinds: monotonic
/// counters, last-write gauges, and histogram observations. `node` is
/// the process the sample is attributed to ([`ProcessId::new`] of
/// `usize::MAX`.. never appears; engine-global samples use node 0 by
/// convention and a [`MsgClass::None`] class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// Add `delta` to the counter `name` at `(node, class)`.
    Counter {
        /// Attributed process.
        node: ProcessId,
        /// Message-class attribution.
        class: MsgClass,
        /// Metric name (a `'static` vocabulary; see `sfs-obs::metrics`).
        name: &'static str,
        /// Increment.
        delta: u64,
    },
    /// Set the gauge `name` at `(node, class)` to `value`.
    Gauge {
        /// Attributed process.
        node: ProcessId,
        /// Message-class attribution.
        class: MsgClass,
        /// Metric name.
        name: &'static str,
        /// New value.
        value: u64,
    },
    /// Record `value` into the histogram `name` at `(node, class)`.
    Observe {
        /// Attributed process.
        node: ProcessId,
        /// Message-class attribution.
        class: MsgClass,
        /// Metric name.
        name: &'static str,
        /// Observed sample (ticks, bytes, nanoseconds — the name says).
        value: u64,
    },
}

impl ObsEvent {
    /// The metric name, whatever the shape.
    pub fn name(&self) -> &'static str {
        match self {
            ObsEvent::Counter { name, .. }
            | ObsEvent::Gauge { name, .. }
            | ObsEvent::Observe { name, .. } => name,
        }
    }
}

/// A telemetry sink engines report into.
///
/// Implementations must be cheap, lock-light, and — the invariant the
/// conformance suite enforces — **side-effect-free toward the engine**:
/// `record` takes `&self`, draws no randomness from the engine's rng,
/// and cannot influence scheduling. The `sfs-obs` crate provides the
/// registry and flight-recorder implementations.
pub trait ObsSink: Send + Sync {
    /// Absorb one fact.
    fn record(&self, event: ObsEvent);
}

/// A cloneable, `Debug`-friendly handle to an [`ObsSink`], so specs that
/// derive `Clone`/`Debug` (e.g. `ClusterSpec`) can carry one.
#[derive(Clone)]
pub struct ObsHandle(Arc<dyn ObsSink>);

impl ObsHandle {
    /// Wraps a sink.
    pub fn new(sink: Arc<dyn ObsSink>) -> Self {
        ObsHandle(sink)
    }

    /// The underlying sink.
    pub fn sink(&self) -> &Arc<dyn ObsSink> {
        &self.0
    }

    /// Report one fact.
    pub fn record(&self, event: ObsEvent) {
        self.0.record(event);
    }
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHandle").finish_non_exhaustive()
    }
}

/// A trace-event sink: the second half of the telemetry seam, carrying
/// **structural** facts (the [`crate::trace::TraceEvent`]s the engines
/// append to their traces) instead of numeric samples.
///
/// Where [`ObsSink`] feeds metric registries, an `EventSink` feeds
/// *property monitors*: the `sfs-obs` streaming sFS monitors consume
/// exactly the event stream a post-hoc checker would read off the
/// finished trace, one event at a time, as each engine records it. The
/// execution-neutrality contract is identical to [`ObsSink`]'s — the
/// sink is handed an immutable borrow of an already-recorded event,
/// draws no randomness, and has no channel back into scheduling — so a
/// monitored run is byte-identical to a bare run on the simulator and
/// HB-fingerprint-identical on every backend.
pub trait EventSink: Send + Sync {
    /// Absorb one just-recorded trace event.
    fn on_event(&self, event: &crate::trace::TraceEvent);
}

/// A cloneable, `Debug`-friendly handle to an [`EventSink`], mirroring
/// [`ObsHandle`] so specs that derive `Clone`/`Debug` can carry one.
#[derive(Clone)]
pub struct EventSinkHandle(Arc<dyn EventSink>);

impl EventSinkHandle {
    /// Wraps a sink.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        EventSinkHandle(sink)
    }

    /// The underlying sink.
    pub fn sink(&self) -> &Arc<dyn EventSink> {
        &self.0
    }

    /// Report one just-recorded trace event.
    pub fn on_event(&self, event: &crate::trace::TraceEvent) {
        self.0.on_event(event);
    }
}

impl fmt::Debug for EventSinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventSinkHandle").finish_non_exhaustive()
    }
}

/// Metric names the engines emit. Centralised so the registry, the
/// engines, and the reports agree on spelling; the `sfs-obs` crate
/// re-exports them.
pub mod metric {
    /// Counter: send actions executed.
    pub const SENT: &str = "sent";
    /// Counter: messages admitted to a live process.
    pub const DELIVERED: &str = "delivered";
    /// Counter: copies withheld by the link/shim.
    pub const DROPPED: &str = "dropped";
    /// Counter: extra copies minted by the link/shim.
    pub const DUPLICATED: &str = "duplicated";
    /// Counter: messages consumed at a crashed receiver.
    pub const TO_CRASHED: &str = "to_crashed";
    /// Counter: sender-paid encoded frame bytes.
    pub const WIRE_BYTES: &str = "wire_bytes";
    /// Counter: timer firings delivered.
    pub const TIMERS: &str = "timers_fired";
    /// Counter: failure detections declared.
    pub const DETECTIONS: &str = "detections";
    /// Counter: process crashes.
    pub const CRASHES: &str = "crashes";
    /// Histogram: send→deliver latency in virtual ticks.
    pub const DELIVERY_LATENCY: &str = "delivery_latency_ticks";
    /// Histogram: router inbox depth sampled at each dispatch.
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Histogram: timer-wheel occupancy sampled at each advance.
    pub const WHEEL_OCCUPANCY: &str = "wheel_occupancy";
    /// Counter: wall nanoseconds the router spent blocked on its inbox.
    pub const STALL_NS: &str = "stall_ns";
    /// Counter: wall nanoseconds the router spent dispatching events.
    pub const COMPUTE_NS: &str = "compute_ns";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Capture(Mutex<Vec<ObsEvent>>);
    impl ObsSink for Capture {
        fn record(&self, event: ObsEvent) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn handle_forwards_and_is_debuggable() {
        let sink = Arc::new(Capture(Mutex::new(Vec::new())));
        let handle = ObsHandle::new(sink.clone());
        let cloned = handle.clone();
        cloned.record(ObsEvent::Counter {
            node: ProcessId::new(3),
            class: MsgClass::Infra,
            name: metric::SENT,
            delta: 2,
        });
        assert_eq!(sink.0.lock().unwrap().len(), 1);
        assert!(format!("{handle:?}").contains("ObsHandle"));
    }

    #[test]
    fn class_round_trips_the_infra_flag() {
        assert_eq!(MsgClass::from_infra(true), MsgClass::Infra);
        assert_eq!(MsgClass::from_infra(false), MsgClass::App);
        assert_eq!(MsgClass::None.label(), "-");
    }
}
