//! Link-fault models: the faulty network beneath the reliable channels.
//!
//! The paper's §2 model *assumes* reliable FIFO channels; [`LatencyModel`]
//! realizes only the asynchrony half of that assumption (unbounded delay).
//! A [`LinkModel`] generalizes the per-message hook to a faulty network:
//! each send draws a [`LinkVerdict`] — deliver after a delay, silently
//! drop, or deliver twice. A [`PartitionSchedule`] scripts cut/heal of
//! whole link sets over [`VirtualTime`], and [`FaultyLink`] composes a
//! base latency model with i.i.d. loss, duplication, and a partition
//! schedule.
//!
//! Every [`LatencyModel`] is a [`LinkModel`] via a blanket impl (always
//! [`LinkVerdict::Deliver`]), so existing models and call sites work
//! unchanged. The `sfs-transport` crate builds the layer that *earns* the
//! reliable-FIFO abstraction back on top of a faulty link.

use crate::id::ProcessId;
use crate::latency::LatencyModel;
use crate::time::VirtualTime;
use rand::rngs::StdRng;
use rand::Rng;

/// What the network does with one sent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Deliver after the given delay in ticks (clamped to at least 1).
    Deliver(u64),
    /// Silently lose the message; the sender learns nothing.
    Drop,
    /// Deliver two copies, after the given delays. Both copies carry the
    /// same message id (they *are* the same message, seen twice).
    Duplicate(u64, u64),
}

/// Per-message network behaviour: the generalization of [`LatencyModel`]
/// to lossy, duplicating, partitionable links.
///
/// Engines consult the model once per send, in send order, with the
/// run's shared rng — so a run remains fully determined by `(processes,
/// link model, fault plan, seed)` exactly as with latency models.
pub trait LinkModel {
    /// The verdict for a message sent `from -> to` at time `now`.
    fn verdict(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: VirtualTime,
        rng: &mut StdRng,
    ) -> LinkVerdict;
}

/// Every latency model is a loss-free link model: the verdict is always
/// [`LinkVerdict::Deliver`] with the model's delay. This keeps every
/// existing `LatencyModel` call site working unchanged.
impl<L: LatencyModel> LinkModel for L {
    fn verdict(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: VirtualTime,
        rng: &mut StdRng,
    ) -> LinkVerdict {
        LinkVerdict::Deliver(self.latency(from, to, now, rng))
    }
}

/// Which directed links one scripted cut severs.
#[derive(Debug, Clone)]
enum LinkSet {
    /// Explicit directed pairs.
    Pairs(Vec<(ProcessId, ProcessId)>),
    /// Everything crossing the boundary between `group` and its
    /// complement, in both directions — a network split.
    Split(Vec<ProcessId>),
}

impl LinkSet {
    fn severs(&self, from: ProcessId, to: ProcessId) -> bool {
        match self {
            LinkSet::Pairs(pairs) => pairs.iter().any(|&(f, t)| f == from && t == to),
            LinkSet::Split(group) => {
                let a = group.contains(&from);
                let b = group.contains(&to);
                a != b
            }
        }
    }
}

/// One scripted cut: the links in `links` are severed for `[from, until)`.
#[derive(Debug, Clone)]
struct Cut {
    from: VirtualTime,
    until: VirtualTime,
    links: LinkSet,
}

/// A dynamic partition script: cut/heal of link sets over virtual time.
///
/// Messages sent while a link is severed are dropped (the verdict of the
/// wrapping [`FaultyLink`]); messages already in flight are unaffected,
/// matching a network that loses new traffic at the cut, not the queue.
/// A cut with `until = `[`VirtualTime::MAX`] never heals.
///
/// # Examples
///
/// ```
/// use sfs_asys::{PartitionSchedule, ProcessId, VirtualTime};
///
/// let p = |i| ProcessId::new(i);
/// let sched = PartitionSchedule::new()
///     // {p0} is isolated from ticks 100 to 200, then the net heals.
///     .split(VirtualTime::from_ticks(100), VirtualTime::from_ticks(200), &[p(0)]);
/// assert!(!sched.severed(p(0), p(1), VirtualTime::from_ticks(50)));
/// assert!(sched.severed(p(0), p(1), VirtualTime::from_ticks(150)));
/// assert!(sched.severed(p(1), p(0), VirtualTime::from_ticks(150)));
/// assert!(!sched.severed(p(0), p(1), VirtualTime::from_ticks(200)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PartitionSchedule {
    cuts: Vec<Cut>,
}

impl PartitionSchedule {
    /// An empty schedule: the network is never partitioned.
    pub fn new() -> Self {
        PartitionSchedule::default()
    }

    /// Severs the directed links `pairs` for `[from, until)`.
    pub fn cut_links(
        mut self,
        from: VirtualTime,
        until: VirtualTime,
        pairs: &[(ProcessId, ProcessId)],
    ) -> Self {
        self.cuts.push(Cut {
            from,
            until,
            links: LinkSet::Pairs(pairs.to_vec()),
        });
        self
    }

    /// Splits the network into `group` vs. the rest for `[from, until)`:
    /// every link crossing the boundary is severed, in both directions.
    pub fn split(mut self, from: VirtualTime, until: VirtualTime, group: &[ProcessId]) -> Self {
        self.cuts.push(Cut {
            from,
            until,
            links: LinkSet::Split(group.to_vec()),
        });
        self
    }

    /// Whether the link `from -> to` is severed at `now`.
    pub fn severed(&self, from: ProcessId, to: ProcessId, now: VirtualTime) -> bool {
        self.cuts
            .iter()
            .any(|c| now >= c.from && now < c.until && c.links.severs(from, to))
    }

    /// Whether the schedule contains no cuts at all.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// The earliest moment from which the network is whole again — the
    /// latest heal time across all cuts — or `None` when the schedule
    /// has no cuts at all or contains a cut that never heals.
    pub fn healed_at(&self) -> Option<VirtualTime> {
        if self.cuts.iter().any(|c| c.until >= VirtualTime::MAX) {
            return None;
        }
        self.cuts.iter().map(|c| c.until).max()
    }
}

/// One scripted delay storm: messages on `links` pay `extra` additional
/// ticks of delay while `[from, until)` is in effect.
#[derive(Debug, Clone)]
struct Storm {
    from: VirtualTime,
    until: VirtualTime,
    links: LinkSet,
    extra: u64,
}

/// A delay-storm script: windows of virtual time during which chosen link
/// sets pay a flat delay surcharge on top of the base latency model.
///
/// Storms model congestion and gray failure — links that stay *up* (no
/// loss is introduced) but get slow enough to look dead to a poorly
/// provisioned timeout. Overlapping storms stack additively. Like
/// [`PartitionSchedule`], windows are half-open `[from, until)` and the
/// surcharge applies to messages *sent* during the window (in-flight
/// traffic is unaffected).
///
/// # Examples
///
/// ```
/// use sfs_asys::{ProcessId, StormSchedule, VirtualTime};
///
/// let p = |i| ProcessId::new(i);
/// let t = VirtualTime::from_ticks;
/// let storms = StormSchedule::new()
///     // p0's outbound traffic crawls (+120 ticks) from 100 to 200.
///     .surge_links(t(100), t(200), &[(p(0), p(1)), (p(0), p(2))], 120);
/// assert_eq!(storms.surcharge(p(0), p(1), t(150)), 120);
/// assert_eq!(storms.surcharge(p(0), p(1), t(200)), 0);
/// assert_eq!(storms.surcharge(p(1), p(0), t(150)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StormSchedule {
    storms: Vec<Storm>,
}

impl StormSchedule {
    /// An empty schedule: no link ever pays a surcharge.
    pub fn new() -> Self {
        StormSchedule::default()
    }

    /// Adds `extra` ticks to the directed links `pairs` for
    /// `[from, until)`.
    pub fn surge_links(
        mut self,
        from: VirtualTime,
        until: VirtualTime,
        pairs: &[(ProcessId, ProcessId)],
        extra: u64,
    ) -> Self {
        self.storms.push(Storm {
            from,
            until,
            links: LinkSet::Pairs(pairs.to_vec()),
            extra,
        });
        self
    }

    /// Adds `extra` ticks to every link crossing the boundary between
    /// `group` and its complement (both directions) for `[from, until)`.
    pub fn surge_split(
        mut self,
        from: VirtualTime,
        until: VirtualTime,
        group: &[ProcessId],
        extra: u64,
    ) -> Self {
        self.storms.push(Storm {
            from,
            until,
            links: LinkSet::Split(group.to_vec()),
            extra,
        });
        self
    }

    /// The total surcharge on `from -> to` at `now` (overlapping storms
    /// stack).
    pub fn surcharge(&self, from: ProcessId, to: ProcessId, now: VirtualTime) -> u64 {
        self.storms
            .iter()
            .filter(|s| now >= s.from && now < s.until && s.links.severs(from, to))
            .map(|s| s.extra)
            .sum()
    }

    /// Whether the schedule contains no storms at all.
    pub fn is_empty(&self) -> bool {
        self.storms.is_empty()
    }
}

/// A faulty network: a base latency model composed with i.i.d. message
/// loss, i.i.d. duplication, and a [`PartitionSchedule`].
///
/// Verdict order: a severed link drops unconditionally; otherwise the
/// loss coin is tossed, then the duplication coin, then the base model
/// supplies the delay(s). Coins are only consumed when their probability
/// is nonzero, so a `FaultyLink` with `loss = duplicate = 0` and no cuts
/// consumes the rng exactly like its base model — loss-free runs stay
/// byte-identical to bare-latency runs.
///
/// # Examples
///
/// ```
/// use sfs_asys::{FaultyLink, UniformLatency};
///
/// let link = FaultyLink::new(UniformLatency::new(1, 10))
///     .loss(0.05)
///     .duplicate(0.01);
/// # let _ = link;
/// ```
#[derive(Debug, Clone)]
pub struct FaultyLink<B> {
    base: B,
    loss: f64,
    duplicate: f64,
    partitions: PartitionSchedule,
    storms: StormSchedule,
}

impl<B: LatencyModel> FaultyLink<B> {
    /// A loss-free, unpartitioned faulty link over `base` — configure
    /// with [`FaultyLink::loss`], [`FaultyLink::duplicate`],
    /// [`FaultyLink::partitions`], and [`FaultyLink::storms`].
    pub fn new(base: B) -> Self {
        FaultyLink {
            base,
            loss: 0.0,
            duplicate: 0.0,
            partitions: PartitionSchedule::new(),
            storms: StormSchedule::new(),
        }
    }

    /// Sets the i.i.d. per-message loss probability (clamped to `[0, 1]`).
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the i.i.d. per-message duplication probability (clamped to
    /// `[0, 1]`).
    pub fn duplicate(mut self, p: f64) -> Self {
        self.duplicate = p.clamp(0.0, 1.0);
        self
    }

    /// Installs the partition script.
    pub fn partitions(mut self, sched: PartitionSchedule) -> Self {
        self.partitions = sched;
        self
    }

    /// Installs the delay-storm script. Surcharges are added to the base
    /// model's delay (both copies of a duplicate pay it) and consume no
    /// randomness, so a storm-free schedule leaves the rng stream — and
    /// hence every existing run — untouched.
    pub fn storms(mut self, sched: StormSchedule) -> Self {
        self.storms = sched;
        self
    }
}

impl<B: LatencyModel> LinkModel for FaultyLink<B> {
    fn verdict(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: VirtualTime,
        rng: &mut StdRng,
    ) -> LinkVerdict {
        if self.partitions.severed(from, to, now) {
            return LinkVerdict::Drop;
        }
        if self.loss > 0.0 && rng.gen_bool(self.loss) {
            return LinkVerdict::Drop;
        }
        let extra = self.storms.surcharge(from, to, now);
        if self.duplicate > 0.0 && rng.gen_bool(self.duplicate) {
            let d1 = self.base.latency(from, to, now, rng);
            let d2 = self.base.latency(from, to, now, rng);
            return LinkVerdict::Duplicate(d1 + extra, d2 + extra);
        }
        LinkVerdict::Deliver(self.base.latency(from, to, now, rng) + extra)
    }
}

/// Arbitrary closure-backed link model, for scripted drop/duplicate
/// patterns (the transport test suite's adversary).
pub struct FnLink<F>(pub F);

impl<F> LinkModel for FnLink<F>
where
    F: FnMut(ProcessId, ProcessId, VirtualTime, &mut StdRng) -> LinkVerdict,
{
    fn verdict(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        now: VirtualTime,
        rng: &mut StdRng,
    ) -> LinkVerdict {
        (self.0)(from, to, now, rng)
    }
}

impl<F> std::fmt::Debug for FnLink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnLink").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::FixedLatency;
    use rand::SeedableRng;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn t(ticks: u64) -> VirtualTime {
        VirtualTime::from_ticks(ticks)
    }

    #[test]
    fn latency_models_are_loss_free_links() {
        let mut m = FixedLatency(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            LinkModel::verdict(&mut m, p(0), p(1), t(0), &mut rng),
            LinkVerdict::Deliver(4)
        );
    }

    #[test]
    fn partition_windows_are_half_open_and_directional_for_pairs() {
        let sched = PartitionSchedule::new().cut_links(t(10), t(20), &[(p(0), p(1))]);
        assert!(!sched.severed(p(0), p(1), t(9)));
        assert!(sched.severed(p(0), p(1), t(10)));
        assert!(sched.severed(p(0), p(1), t(19)));
        assert!(!sched.severed(p(0), p(1), t(20)));
        // Directed: the reverse link stays up.
        assert!(!sched.severed(p(1), p(0), t(15)));
    }

    #[test]
    fn split_severs_both_directions_across_the_boundary_only() {
        let sched = PartitionSchedule::new().split(t(0), t(100), &[p(0), p(1)]);
        assert!(sched.severed(p(0), p(2), t(5)));
        assert!(sched.severed(p(2), p(1), t(5)));
        // Within either side, links stay up.
        assert!(!sched.severed(p(0), p(1), t(5)));
        assert!(!sched.severed(p(2), p(3), t(5)));
    }

    #[test]
    fn healed_at_is_the_moment_the_whole_net_is_up() {
        let sched =
            PartitionSchedule::new()
                .split(t(10), t(50), &[p(0)])
                .split(t(20), t(80), &[p(1)]);
        assert_eq!(sched.healed_at(), Some(t(80)));
        let forever = PartitionSchedule::new().split(t(10), VirtualTime::MAX, &[p(0)]);
        assert_eq!(forever.healed_at(), None);
        // A forever cut poisons the whole schedule: the network is never
        // whole again, even though another cut heals.
        let mixed = PartitionSchedule::new().split(t(10), t(50), &[p(0)]).split(
            t(20),
            VirtualTime::MAX,
            &[p(1)],
        );
        assert_eq!(mixed.healed_at(), None);
        assert_eq!(PartitionSchedule::new().healed_at(), None);
    }

    #[test]
    fn faulty_link_with_zero_rates_consumes_rng_like_its_base() {
        let mut faulty = FaultyLink::new(FixedLatency(3));
        let mut bare = FixedLatency(3);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(
                faulty.verdict(p(0), p(1), t(0), &mut r1),
                LinkModel::verdict(&mut bare, p(0), p(1), t(0), &mut r2)
            );
        }
        use rand::RngCore;
        assert_eq!(r1.next_u64(), r2.next_u64(), "identical rng consumption");
    }

    #[test]
    fn loss_rate_is_roughly_respected() {
        let mut link = FaultyLink::new(FixedLatency(1)).loss(0.25);
        let mut rng = StdRng::seed_from_u64(42);
        let drops = (0..10_000)
            .filter(|_| link.verdict(p(0), p(1), t(0), &mut rng) == LinkVerdict::Drop)
            .count();
        assert!((2_000..3_000).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn duplicates_draw_two_delays_from_the_base() {
        let mut link = FaultyLink::new(FixedLatency(7)).duplicate(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            link.verdict(p(0), p(1), t(0), &mut rng),
            LinkVerdict::Duplicate(7, 7)
        );
    }

    #[test]
    fn severed_links_drop_before_any_coin_is_tossed() {
        let mut link = FaultyLink::new(FixedLatency(1)).partitions(PartitionSchedule::new().split(
            t(0),
            VirtualTime::MAX,
            &[p(0)],
        ));
        let mut r1 = StdRng::seed_from_u64(5);
        assert_eq!(link.verdict(p(0), p(1), t(0), &mut r1), LinkVerdict::Drop);
        use rand::RngCore;
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(r1.next_u64(), r2.next_u64(), "no rng consumed on a cut");
    }

    #[test]
    fn overlapping_cuts_sever_while_any_window_is_open() {
        // Two overlapping cuts of the same link: the union of windows
        // severs, and healing one cut does not heal the link early.
        let sched = PartitionSchedule::new()
            .cut_links(t(10), t(30), &[(p(0), p(1))])
            .cut_links(t(20), t(50), &[(p(0), p(1))]);
        assert!(!sched.severed(p(0), p(1), t(9)));
        assert!(sched.severed(p(0), p(1), t(15)));
        assert!(sched.severed(p(0), p(1), t(25)), "overlap region");
        assert!(
            sched.severed(p(0), p(1), t(35)),
            "first cut healed, second holds"
        );
        assert!(!sched.severed(p(0), p(1), t(50)));
        assert_eq!(sched.healed_at(), Some(t(50)));
    }

    #[test]
    fn heal_before_cut_ordering_is_an_empty_window() {
        // A cut whose heal precedes (or equals) its start never severs
        // anything: [from, until) with until <= from is empty.
        let inverted = PartitionSchedule::new().cut_links(t(40), t(10), &[(p(0), p(1))]);
        for tick in 0..60 {
            assert!(!inverted.severed(p(0), p(1), t(tick)), "tick {tick}");
        }
        let degenerate = PartitionSchedule::new().split(t(25), t(25), &[p(0)]);
        assert!(!degenerate.severed(p(0), p(1), t(25)));
    }

    #[test]
    fn cut_at_tick_zero_severs_from_the_first_instant() {
        let sched = PartitionSchedule::new().split(t(0), t(5), &[p(0)]);
        assert!(sched.severed(p(0), p(1), t(0)), "tick 0 is inside [0, 5)");
        assert!(sched.severed(p(1), p(0), t(4)));
        assert!(!sched.severed(p(0), p(1), t(5)));
    }

    #[test]
    fn empty_link_sets_sever_nothing() {
        // A cut over zero pairs and a split of the empty group both name
        // no links; the schedule is non-empty but severs nothing.
        let sched = PartitionSchedule::new()
            .cut_links(t(0), t(100), &[])
            .split(t(0), t(100), &[]);
        assert!(!sched.is_empty());
        for (a, b) in [(0, 1), (1, 0), (2, 3)] {
            assert!(!sched.severed(p(a), p(b), t(50)));
        }
        // A split of the *full* group also crosses no boundary.
        let all = PartitionSchedule::new().split(t(0), t(100), &[p(0), p(1)]);
        assert!(!all.severed(p(0), p(1), t(50)));
    }

    #[test]
    fn storms_surcharge_delays_without_touching_the_rng() {
        let storms = StormSchedule::new()
            .surge_links(t(100), t(200), &[(p(0), p(1))], 120)
            .surge_split(t(150), t(250), &[p(0)], 30);
        let mut link = FaultyLink::new(FixedLatency(3)).storms(storms);
        let mut r1 = StdRng::seed_from_u64(11);
        // Outside every window: base delay.
        assert_eq!(
            link.verdict(p(0), p(1), t(50), &mut r1),
            LinkVerdict::Deliver(3)
        );
        // Inside the pair storm only.
        assert_eq!(
            link.verdict(p(0), p(1), t(120), &mut r1),
            LinkVerdict::Deliver(123)
        );
        // Overlap region: surcharges stack.
        assert_eq!(
            link.verdict(p(0), p(1), t(160), &mut r1),
            LinkVerdict::Deliver(153)
        );
        // The split half also covers the reverse direction.
        assert_eq!(
            link.verdict(p(1), p(0), t(160), &mut r1),
            LinkVerdict::Deliver(33)
        );
        // Half-open: the boundary tick is storm-free for the pair window.
        assert_eq!(
            link.verdict(p(0), p(1), t(200), &mut r1),
            LinkVerdict::Deliver(33)
        );
        // Rng untouched: FixedLatency consumes none, and neither do storms.
        use rand::RngCore;
        let mut r2 = StdRng::seed_from_u64(11);
        assert_eq!(r1.next_u64(), r2.next_u64(), "storms consume no rng");
    }

    #[test]
    fn storm_surcharge_applies_to_both_duplicate_copies() {
        let storms = StormSchedule::new().surge_links(t(0), t(10), &[(p(0), p(1))], 5);
        let mut link = FaultyLink::new(FixedLatency(7))
            .duplicate(1.0)
            .storms(storms);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            link.verdict(p(0), p(1), t(0), &mut rng),
            LinkVerdict::Duplicate(12, 12)
        );
    }

    #[test]
    fn fn_link_scripts_arbitrary_patterns() {
        let mut calls = 0u64;
        let mut link = FnLink(move |_, _, _, _: &mut StdRng| {
            calls += 1;
            if calls.is_multiple_of(2) {
                LinkVerdict::Drop
            } else {
                LinkVerdict::Deliver(1)
            }
        });
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            link.verdict(p(0), p(1), t(0), &mut rng),
            LinkVerdict::Deliver(1)
        );
        assert_eq!(link.verdict(p(0), p(1), t(0), &mut rng), LinkVerdict::Drop);
    }
}
