//! Hierarchical timer wheel: the event-driven runtime's deadline store.
//!
//! The threaded runtime used to sleep one real millisecond per virtual tick;
//! every logical deadline (message delivery, ARQ retransmit, heartbeat
//! probe, partition/storm window edge, fault-plan injection) was a wall
//! clock `Instant`. The wheel replaces all of that: deadlines are
//! [`VirtualTime`] points, and the owner advances virtual time directly to
//! the next due instant instead of sleeping through empty ticks.
//!
//! # Structure
//!
//! A classic hashed hierarchical wheel (Varghese & Lauck): `LEVELS` levels
//! of 64 slots each, level `l` spanning `64^(l+1)` ticks, plus an overflow
//! list for deadlines beyond the top level's span. Insertion is O(1);
//! firing cascades a higher-level slot down one level at a time as the
//! clock reaches it.
//!
//! # Ordering guarantees
//!
//! * Entries drain in nondecreasing deadline order (property-tested in
//!   `tests/wheel_prop.rs`).
//! * Entries with the *same* deadline drain in insertion order: every entry
//!   carries a monotone sequence number and each due instant is sorted by
//!   it before being returned. The runtime relies on this for per-channel
//!   FIFO and for fault-plan injections (inserted first, at construction)
//!   firing before same-instant deliveries.
//!
//! # Cancellation
//!
//! [`TimerWheel::cancel`] removes an entry eagerly. The handle carries the
//! entry's deadline, so only the `LEVELS` slots that deadline can occupy
//! (plus the overflow list) are searched — cancellation cost is bounded by
//! slot occupancy, not wheel size. Re-arming after a cancel (Karn-style
//! backoff) is a fresh insert into the same slot storage.

use crate::time::VirtualTime;

/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels before spilling to the overflow list. Four levels cover
/// `64^4 = ~16.7M` ticks of lookahead — far beyond any configured horizon;
/// the overflow list exists for "effectively never" deadlines such as
/// [`NEVER`](crate::NEVER)-latency links.
const LEVELS: usize = 4;
/// Ticks covered by the whole wheel from its current origin.
const WHEEL_SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Handle to a scheduled entry, used only for [`TimerWheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WheelEntryId {
    seq: u64,
    deadline: VirtualTime,
}

#[derive(Debug)]
struct Entry<T> {
    deadline: VirtualTime,
    seq: u64,
    item: T,
}

#[derive(Debug)]
struct Slot<T> {
    entries: Vec<Entry<T>>,
    /// Minimum deadline among `entries`; only meaningful while occupied.
    min: VirtualTime,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            entries: Vec::new(),
            min: VirtualTime::MAX,
        }
    }
}

/// A hierarchical timer wheel over [`VirtualTime`].
///
/// # Examples
///
/// ```
/// use sfs_asys::{TimerWheel, VirtualTime};
///
/// let mut wheel = TimerWheel::new();
/// wheel.insert(VirtualTime::from_ticks(5), "b");
/// wheel.insert(VirtualTime::from_ticks(3), "a");
/// assert_eq!(wheel.next_deadline(), Some(VirtualTime::from_ticks(3)));
///
/// let fired = wheel.advance_to(VirtualTime::from_ticks(10));
/// let order: Vec<_> = fired.iter().map(|(t, it)| (t.ticks(), *it)).collect();
/// assert_eq!(order, vec![(3, "a"), (5, "b")]);
/// assert!(wheel.is_empty());
/// ```
#[derive(Debug)]
pub struct TimerWheel<T> {
    levels: Vec<Vec<Slot<T>>>,
    /// Per-level occupancy bitmap; bit `s` set iff `levels[l][s]` is
    /// non-empty.
    occupied: [u64; LEVELS],
    /// Deadlines at or beyond `now + WHEEL_SPAN` at insertion time.
    overflow: Vec<Entry<T>>,
    now: VirtualTime,
    /// Next insertion sequence number; total order on entries.
    next_seq: u64,
    /// Live (scheduled, not fired, not cancelled) entries.
    live: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its clock at [`VirtualTime::ZERO`].
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Slot::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            now: VirtualTime::ZERO,
            next_seq: 0,
            live: 0,
        }
    }

    /// The wheel's current clock reading.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of live scheduled entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live entries remain. Quiescence checks hang off this.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slot index of `deadline` on `level`.
    fn slot_of(deadline: VirtualTime, level: usize) -> usize {
        ((deadline.ticks() >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// Schedules `item` for `deadline`. A deadline at or before the current
    /// clock fires at the current clock (delay-zero entries are legal and
    /// common: same-instant message forwarding). Returns a handle usable
    /// with [`cancel`](Self::cancel).
    pub fn insert(&mut self, deadline: VirtualTime, item: T) -> WheelEntryId {
        let deadline = deadline.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            deadline,
            seq,
            item,
        };
        self.place(entry);
        self.live += 1;
        WheelEntryId { seq, deadline }
    }

    /// Files `entry` into the level whose resolution distinguishes it from
    /// `now`, or the overflow list when it is beyond the wheel's span.
    fn place(&mut self, entry: Entry<T>) {
        let delta = entry.deadline.ticks() - self.now.ticks();
        if delta >= WHEEL_SPAN {
            self.overflow.push(entry);
            return;
        }
        // Highest level on which the deadline and the clock differ; on that
        // level every lower-order tick difference rounds into one slot.
        let level = if delta == 0 {
            0
        } else {
            (63 - u64::leading_zeros(delta) as usize) / SLOT_BITS as usize
        };
        let level = level.min(LEVELS - 1);
        let slot = Self::slot_of(entry.deadline, level);
        let s = &mut self.levels[level][slot];
        s.min = s.min.min(entry.deadline);
        s.entries.push(entry);
        self.occupied[level] |= 1u64 << slot;
    }

    /// Removes the entry behind `id` if it is still scheduled. Returns
    /// whether an entry was removed (false after it already fired, or on a
    /// repeated cancel). Only the slots the entry's deadline can map to are
    /// searched, so the cost is bounded by their occupancy.
    pub fn cancel(&mut self, id: WheelEntryId) -> bool {
        for level in 0..LEVELS {
            let slot = Self::slot_of(id.deadline, level);
            if self.occupied[level] & (1u64 << slot) == 0 {
                continue;
            }
            let s = &mut self.levels[level][slot];
            if let Some(pos) = s.entries.iter().position(|e| e.seq == id.seq) {
                s.entries.swap_remove(pos);
                if s.entries.is_empty() {
                    s.min = VirtualTime::MAX;
                    self.occupied[level] &= !(1u64 << slot);
                } else {
                    s.min = s.entries.iter().map(|e| e.deadline).min().unwrap();
                }
                self.live -= 1;
                return true;
            }
        }
        if let Some(pos) = self.overflow.iter().position(|e| e.seq == id.seq) {
            self.overflow.swap_remove(pos);
            self.live -= 1;
            return true;
        }
        false
    }

    /// Earliest scheduled deadline, or `None` when the wheel is empty.
    pub fn next_deadline(&self) -> Option<VirtualTime> {
        if self.live == 0 {
            return None;
        }
        let mut best = VirtualTime::MAX;
        for level in 0..LEVELS {
            let mut bits = self.occupied[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let s = &self.levels[level][slot];
                if s.min < best {
                    best = s.min;
                }
            }
        }
        for e in &self.overflow {
            if e.deadline < best {
                best = e.deadline;
            }
        }
        Some(best)
    }

    /// Advances the clock to `target`, returning every entry with deadline
    /// `<= target` in (deadline, insertion-seq) order. The clock ends at
    /// `max(now, target)`.
    pub fn advance_to(&mut self, target: VirtualTime) -> Vec<(VirtualTime, T)> {
        let mut fired: Vec<Entry<T>> = Vec::new();
        while let Some(d) = self.next_deadline() {
            if d > target {
                break;
            }
            self.now = d;
            // Cascade: pull every slot containing `d` on levels > 0 down,
            // re-filing against the new clock. Entries due exactly at `d`
            // re-file to level 0, slot `d & 63`.
            for level in (1..LEVELS).rev() {
                let slot = Self::slot_of(d, level);
                if self.occupied[level] & (1u64 << slot) == 0 {
                    continue;
                }
                if self.levels[level][slot].min > d {
                    continue;
                }
                let entries = std::mem::take(&mut self.levels[level][slot].entries);
                self.levels[level][slot].min = VirtualTime::MAX;
                self.occupied[level] &= !(1u64 << slot);
                for e in entries {
                    self.place(e);
                }
            }
            // Overflow entries whose deadline the clock has reached fire
            // directly; the rest stay put (re-filing them on every advance
            // would be quadratic for "never" deadlines).
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i].deadline <= d {
                    fired.push(self.overflow.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            // Fire level 0's slot for `d`.
            let slot = Self::slot_of(d, 0);
            if self.occupied[0] & (1u64 << slot) != 0 && self.levels[0][slot].min <= d {
                let entries = std::mem::take(&mut self.levels[0][slot].entries);
                self.levels[0][slot].min = VirtualTime::MAX;
                self.occupied[0] &= !(1u64 << slot);
                for e in entries {
                    // Because firing proceeds in deadline order, a level-0
                    // slot only ever holds entries for one absolute
                    // deadline; assert that invariant in debug builds.
                    debug_assert_eq!(e.deadline, d);
                    fired.push(e);
                }
            }
        }
        if target > self.now {
            self.now = target;
        }
        fired.sort_by_key(|e| (e.deadline, e.seq));
        self.live -= fired.len();
        fired.into_iter().map(|e| (e.deadline, e.item)).collect()
    }

    /// Advances to the next due instant and returns its entries, or `None`
    /// when the wheel is empty.
    pub fn pop_next_instant(&mut self) -> Option<(VirtualTime, Vec<T>)> {
        let d = self.next_deadline()?;
        let fired = self.advance_to(d);
        debug_assert!(!fired.is_empty());
        Some((d, fired.into_iter().map(|(_, item)| item).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(t: u64) -> VirtualTime {
        VirtualTime::from_ticks(t)
    }

    #[test]
    fn coincident_deadlines_fire_in_insertion_order() {
        let mut wheel = TimerWheel::new();
        for label in ["first", "second", "third", "fourth"] {
            wheel.insert(vt(7), label);
        }
        let (at, items) = wheel.pop_next_instant().expect("due instant");
        assert_eq!(at, vt(7));
        assert_eq!(items, vec!["first", "second", "third", "fourth"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn coincident_deadlines_across_levels_still_sort_by_seq() {
        // Same deadline reached via different insertion clocks: one entry
        // files to a high level (far future), the clock advances, then a
        // second entry for the same instant files to level 0. Insertion
        // order must still win at the shared instant.
        let mut wheel = TimerWheel::new();
        wheel.insert(vt(5000), "early-insert");
        let fired = wheel.advance_to(vt(4999));
        assert!(fired.is_empty());
        wheel.insert(vt(5000), "late-insert");
        let (_, items) = wheel.pop_next_instant().expect("due");
        assert_eq!(items, vec!["early-insert", "late-insert"]);
    }

    #[test]
    fn slot_edge_deadlines_cascade_correctly() {
        // Deadlines exactly at level boundaries: 63/64/65 straddle the
        // level-0 span, 4095/4096/4097 the level-1 span.
        let mut wheel = TimerWheel::new();
        for t in [63u64, 64, 65, 4095, 4096, 4097] {
            wheel.insert(vt(t), t);
        }
        let fired = wheel.advance_to(vt(10_000));
        let times: Vec<u64> = fired.iter().map(|(at, _)| at.ticks()).collect();
        assert_eq!(times, vec![63, 64, 65, 4095, 4096, 4097]);
        for (at, item) in fired {
            assert_eq!(at.ticks(), item);
        }
    }

    #[test]
    fn far_future_deadlines_go_to_overflow_and_still_fire() {
        let mut wheel = TimerWheel::new();
        wheel.insert(vt(WHEEL_SPAN * 3), "far");
        wheel.insert(vt(2), "near");
        assert_eq!(wheel.len(), 2);
        assert_eq!(wheel.next_deadline(), Some(vt(2)));
        let (at, items) = wheel.pop_next_instant().expect("near");
        assert_eq!((at, items), (vt(2), vec!["near"]));
        let (at, items) = wheel.pop_next_instant().expect("far");
        assert_eq!((at, items), (vt(WHEEL_SPAN * 3), vec!["far"]));
        assert!(wheel.pop_next_instant().is_none());
    }

    #[test]
    fn max_deadline_parks_in_overflow_without_firing() {
        // NEVER-latency links schedule at (effectively) VirtualTime::MAX;
        // the entry must neither fire early nor distort next_deadline once
        // nearer work exists.
        let mut wheel = TimerWheel::new();
        wheel.insert(VirtualTime::MAX, "never");
        wheel.insert(vt(9), "soon");
        assert_eq!(wheel.next_deadline(), Some(vt(9)));
        let fired = wheel.advance_to(vt(1_000_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "soon");
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.next_deadline(), Some(VirtualTime::MAX));
    }

    #[test]
    fn cancel_then_refire_reuses_the_slot() {
        // Karn backoff shape: arm a retransmit deadline, cancel it on ack,
        // re-arm the same instant later for the next window.
        let mut wheel = TimerWheel::new();
        let first = wheel.insert(vt(40), "rto-1");
        assert!(wheel.cancel(first));
        assert!(!wheel.cancel(first), "double cancel is a no-op");
        assert_eq!(wheel.len(), 0);
        assert!(wheel.next_deadline().is_none());
        let _second = wheel.insert(vt(40), "rto-2");
        assert_eq!(wheel.len(), 1);
        let (at, items) = wheel.pop_next_instant().expect("due");
        assert_eq!((at, items), (vt(40), vec!["rto-2"]));
        assert!(wheel.is_empty());
        assert!(wheel.pop_next_instant().is_none());
    }

    #[test]
    fn cancel_after_fire_is_a_no_op() {
        let mut wheel = TimerWheel::new();
        let id = wheel.insert(vt(5), "fired");
        let _ = wheel.advance_to(vt(5));
        assert!(wheel.is_empty());
        assert!(!wheel.cancel(id));
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn cancel_in_overflow_and_after_cascade() {
        let mut wheel = TimerWheel::new();
        let far = wheel.insert(vt(WHEEL_SPAN * 2), "overflow");
        assert!(wheel.cancel(far));
        assert!(wheel.is_empty());

        // Cancel after the entry cascaded to a lower level: the handle's
        // deadline still locates it.
        let mid = wheel.insert(vt(4100), "cascades");
        wheel.insert(vt(4000), "pace");
        let fired = wheel.advance_to(vt(4050));
        assert_eq!(fired.len(), 1, "only the pace entry fired");
        assert!(wheel.cancel(mid));
        assert!(wheel.is_empty());
        assert!(wheel.advance_to(vt(10_000)).is_empty());
    }

    #[test]
    fn insert_at_or_before_now_fires_at_now() {
        let mut wheel = TimerWheel::new();
        wheel.insert(vt(100), "marker");
        let _ = wheel.advance_to(vt(100));
        assert_eq!(wheel.now(), vt(100));
        wheel.insert(vt(3), "stale");
        wheel.insert(vt(100), "same-instant");
        let fired = wheel.advance_to(vt(100));
        let items: Vec<_> = fired.iter().map(|(at, it)| (at.ticks(), *it)).collect();
        assert_eq!(items, vec![(100, "stale"), (100, "same-instant")]);
    }

    #[test]
    fn len_tracks_inserts_fires_and_cancels() {
        let mut wheel = TimerWheel::new();
        let a = wheel.insert(vt(1), 'a');
        let _b = wheel.insert(vt(2), 'b');
        assert_eq!(wheel.len(), 2);
        assert!(wheel.cancel(a));
        assert_eq!(wheel.len(), 1);
        let _ = wheel.advance_to(vt(5));
        assert_eq!(wheel.len(), 0);
        assert!(wheel.is_empty());
    }
}
