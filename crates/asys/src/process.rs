//! The process abstraction shared by the simulator and the threaded runtime.
//!
//! A [`Process`] is a deterministic reactive automaton: the engine invokes
//! its callbacks one at a time, and the process responds by queuing
//! [`Action`]s on the provided [`Context`]. All effects are applied by the
//! engine *after* the callback returns, which keeps callbacks pure state
//! transitions over (local state, received event) — exactly the paper's
//! model where an event changes the state of one process and at most one
//! incident channel.

use crate::id::{MsgId, ProcessId, TimerId};
use crate::note::Note;
use rand::rngs::StdRng;
use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// A predicate deciding which incoming messages a process is currently
/// willing to *receive* (remove from the channel).
///
/// In the paper's model, receiving is an action of the process: a message
/// stays at the head of its FIFO channel until the receiver executes the
/// receive event. The simulated-fail-stop protocol relies on this —
/// property sFS2d requires that "process k does not receive m until either
/// crash_k or failed_k(j) is executed", i.e. the process defers application
/// messages while a detection round is open. Rejected messages are *not*
/// lost: they stay queued in FIFO order and are delivered once the filter
/// accepts them again.
#[derive(Clone)]
pub struct ReceiveFilter<M>(Arc<dyn Fn(&M) -> bool + Send + Sync>);

impl<M> ReceiveFilter<M> {
    /// Creates a filter from a predicate; `true` means "willing to receive
    /// this message now".
    pub fn new(pred: impl Fn(&M) -> bool + Send + Sync + 'static) -> Self {
        ReceiveFilter(Arc::new(pred))
    }

    /// Whether the filter accepts the message.
    pub fn accepts(&self, msg: &M) -> bool {
        (self.0)(msg)
    }
}

impl<M> fmt::Debug for ReceiveFilter<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReceiveFilter").finish_non_exhaustive()
    }
}

/// An effect requested by a process callback, applied by the engine after
/// the callback returns.
#[derive(Debug, Clone)]
pub enum Action<M> {
    /// Append `msg` to channel `C_{self,to}` (self-sends are allowed and
    /// FIFO like any other channel, as the paper's protocol requires —
    /// process `i` sends "j failed" to all processes *including itself*).
    Send {
        /// Destination process.
        to: ProcessId,
        /// Payload.
        msg: M,
    },
    /// Arm a timer that fires after `delay` ticks of virtual time.
    SetTimer {
        /// Timer identity (allocated by [`Context::set_timer`]).
        id: TimerId,
        /// Delay in ticks from now.
        delay: u64,
    },
    /// Cancel a previously armed timer; harmless if already fired.
    CancelTimer {
        /// The timer to cancel.
        id: TimerId,
    },
    /// Halt this process permanently (`crash_i` in the paper). All later
    /// deliveries to it are discarded; it executes no further events.
    CrashSelf,
    /// Record `failed_self(of)` — this process has detected (perhaps
    /// erroneously) the failure of `of`.
    DeclareFailed {
        /// The detected process.
        of: ProcessId,
    },
    /// Attach an annotation to the trace.
    Annotate(Note),
    /// Replace the process's receive filter. `None` accepts everything
    /// (the default).
    SetReceiveFilter(Option<ReceiveFilter<M>>),
    /// Trace-only: record a **model-level send** executed by a layered
    /// protocol (e.g. the `sfs-transport` ARQ wrapper) on behalf of its
    /// inner process. The engine records a non-infrastructure `Send`
    /// trace event with the given id and applies no other effect — the
    /// layer itself moves the bytes (as infrastructure frames) and is
    /// responsible for the ids forming a valid model history.
    ModelSend {
        /// Logical destination.
        to: ProcessId,
        /// Logical message id, allocated by the layer.
        msg: MsgId,
    },
    /// Trace-only twin of [`Action::ModelSend`]: record a **model-level
    /// receive** at the moment the layered protocol hands the payload to
    /// its inner process (which may be long after the carrying frame
    /// arrived, e.g. once a retransmission filled a loss gap).
    ModelRecv {
        /// Logical sender.
        from: ProcessId,
        /// Logical message id, as carried by the frame.
        msg: MsgId,
    },
}

/// Callback context: identity, time, and an action queue.
///
/// # Examples
///
/// ```no_run
/// use sfs_asys::{Context, Process, ProcessId};
///
/// struct Echo;
/// impl Process<String> for Echo {
///     fn on_start(&mut self, _ctx: &mut Context<'_, String>) {}
///     fn on_message(&mut self, ctx: &mut Context<'_, String>, from: ProcessId, msg: String) {
///         ctx.send(from, msg); // echo back
///     }
/// }
/// ```
#[derive(Debug)]
pub struct Context<'a, M> {
    id: ProcessId,
    n: usize,
    now: crate::time::VirtualTime,
    actions: Vec<Action<M>>,
    rng: &'a mut StdRng,
    next_timer: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context. Used by engines; processes only consume contexts.
    pub fn new(
        id: ProcessId,
        n: usize,
        now: crate::time::VirtualTime,
        rng: &'a mut StdRng,
        next_timer: &'a mut u64,
    ) -> Self {
        Context {
            id,
            n,
            now,
            actions: Vec::new(),
            rng,
            next_timer,
        }
    }

    /// This process's identity.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current virtual time. Processes may use this only for timeouts (the
    /// FS1 mechanism); it carries no synchrony guarantee.
    pub fn now(&self) -> crate::time::VirtualTime {
        self.now
    }

    /// All process ids in the system.
    pub fn peers(&self) -> impl Iterator<Item = ProcessId> + Clone {
        ProcessId::all(self.n)
    }

    /// Queues a message send to `to` (may be `self.id()`).
    pub fn send(&mut self, to: ProcessId, msg: M)
    where
        M: Clone,
    {
        self.actions.push(Action::Send { to, msg });
    }

    /// Queues a send to every process. `include_self` selects whether the
    /// sender also gets a copy — the paper's one-round protocol broadcasts
    /// "j failed" to all processes including the sender itself.
    pub fn broadcast(&mut self, msg: M, include_self: bool)
    where
        M: Clone,
    {
        for p in ProcessId::all(self.n) {
            if include_self || p != self.id {
                self.actions.push(Action::Send {
                    to: p,
                    msg: msg.clone(),
                });
            }
        }
    }

    /// Arms a fresh timer firing `delay` ticks from now and returns its id.
    pub fn set_timer(&mut self, delay: u64) -> TimerId {
        let id = TimerId::new(*self.next_timer);
        *self.next_timer += 1;
        self.actions.push(Action::SetTimer { id, delay });
        id
    }

    /// Cancels a timer. Cancelling an already-fired or unknown timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }

    /// Queues a permanent halt of this process (`crash_self`).
    pub fn crash_self(&mut self) {
        self.actions.push(Action::CrashSelf);
    }

    /// Records the detection `failed_self(of)`.
    pub fn declare_failed(&mut self, of: ProcessId) {
        self.actions.push(Action::DeclareFailed { of });
    }

    /// Attaches an annotation to the trace.
    pub fn annotate(&mut self, note: Note) {
        self.actions.push(Action::Annotate(note));
    }

    /// Replaces this process's receive filter: messages the predicate
    /// rejects stay queued (unreceived) in their FIFO channel until a
    /// later filter accepts them. Pass `None` to accept everything.
    pub fn set_receive_filter(&mut self, filter: Option<ReceiveFilter<M>>) {
        self.actions.push(Action::SetReceiveFilter(filter));
    }

    /// Records a model-level send on behalf of a layered inner protocol;
    /// see [`Action::ModelSend`].
    pub fn model_send(&mut self, to: ProcessId, msg: MsgId) {
        self.actions.push(Action::ModelSend { to, msg });
    }

    /// Records a model-level receive on behalf of a layered inner
    /// protocol; see [`Action::ModelRecv`].
    pub fn model_recv(&mut self, from: ProcessId, msg: MsgId) {
        self.actions.push(Action::ModelRecv { from, msg });
    }

    /// Appends a raw action to the queue. This is the other half of the
    /// wrapper seam around [`Context::derive`]: a layering process runs
    /// its inner automaton against a derived context, then translates the
    /// inner actions — re-wrapping sends, passing timers and crashes
    /// through verbatim via this method. Normal processes use the typed
    /// helpers instead.
    pub fn push_action(&mut self, action: Action<M>) {
        self.actions.push(action);
    }

    /// A sub-context over a different message alphabet, sharing this
    /// context's identity, clock, rng stream, and timer allocator. This
    /// is the seam for transport-style wrappers: the wrapper runs its
    /// inner process against the derived context, then translates the
    /// inner actions into its own alphabet.
    pub fn derive<N>(&mut self) -> Context<'_, N> {
        Context::new(
            self.id,
            self.n,
            self.now,
            &mut *self.rng,
            &mut *self.next_timer,
        )
    }

    /// Deterministic per-run randomness for protocol-level choices.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut *self.rng
    }

    /// Drains the queued actions. Used by engines.
    pub fn take_actions(&mut self) -> Vec<Action<M>> {
        std::mem::take(&mut self.actions)
    }
}

/// A deterministic reactive process.
///
/// `M` is the message alphabet of the protocol. Determinism is required for
/// the isomorphism arguments of the paper: a process's behaviour must be a
/// function of its state and the events delivered to it. Use
/// [`Context::rng`] if randomized behaviour is needed — it is seeded per
/// run, so runs remain reproducible.
pub trait Process<M> {
    /// Invoked once, before any delivery, at virtual time zero.
    fn on_start(&mut self, ctx: &mut Context<'_, M>);

    /// Invoked when a message from `from` reaches the head of channel
    /// `C_{from,self}` and is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: ProcessId, msg: M);

    /// Invoked when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, timer: TimerId) {
        let _ = (ctx, timer);
    }

    /// Invoked for environment injections (see `FaultPlan`): the hook by
    /// which the test harness models the paper's lower-level suspicion
    /// mechanism ("e.g., due to a timeout at a lower level").
    fn on_external(&mut self, ctx: &mut Context<'_, M>, payload: M) {
        let _ = (ctx, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_queues_actions_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut next_timer = 0;
        let mut ctx: Context<'_, u32> = Context::new(
            ProcessId::new(0),
            3,
            crate::time::VirtualTime::ZERO,
            &mut rng,
            &mut next_timer,
        );
        ctx.send(ProcessId::new(1), 7);
        let t = ctx.set_timer(5);
        ctx.cancel_timer(t);
        ctx.declare_failed(ProcessId::new(2));
        ctx.crash_self();
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 5);
        assert!(matches!(actions[0], Action::Send { to, msg: 7 } if to == ProcessId::new(1)));
        assert!(matches!(actions[1], Action::SetTimer { id, delay: 5 } if id == t));
        assert!(matches!(actions[2], Action::CancelTimer { id } if id == t));
        assert!(matches!(actions[3], Action::DeclareFailed { of } if of == ProcessId::new(2)));
        assert!(matches!(actions[4], Action::CrashSelf));
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn broadcast_includes_or_excludes_self() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut next_timer = 0;
        let mut ctx: Context<'_, u32> = Context::new(
            ProcessId::new(1),
            3,
            crate::time::VirtualTime::ZERO,
            &mut rng,
            &mut next_timer,
        );
        ctx.broadcast(9, true);
        assert_eq!(ctx.take_actions().len(), 3);
        ctx.broadcast(9, false);
        let acts = ctx.take_actions();
        assert_eq!(acts.len(), 2);
        for a in acts {
            if let Action::Send { to, .. } = a {
                assert_ne!(to, ProcessId::new(1));
            }
        }
    }

    #[test]
    fn timer_ids_are_unique_across_contexts() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut next_timer = 0;
        let t1 = {
            let mut ctx: Context<'_, u32> = Context::new(
                ProcessId::new(0),
                2,
                crate::time::VirtualTime::ZERO,
                &mut rng,
                &mut next_timer,
            );
            ctx.set_timer(1)
        };
        let t2 = {
            let mut ctx: Context<'_, u32> = Context::new(
                ProcessId::new(1),
                2,
                crate::time::VirtualTime::ZERO,
                &mut rng,
                &mut next_timer,
            );
            ctx.set_timer(1)
        };
        assert_ne!(t1, t2);
    }
}
