//! Structured trace annotations.
//!
//! Protocols running inside the simulator can attach [`Note`]s to the trace.
//! Notes never affect execution; they exist so that property checkers can
//! inspect protocol-internal facts that the formal event model does not
//! carry. The main consumer is the Witness-property checker (Theorem 6/7 of
//! the paper), which needs the *quorum set* `Q_ij` each detection was based
//! on.

use crate::id::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Well-known key used by the simulated-fail-stop protocol when recording
/// the quorum set behind a failure detection.
pub const NOTE_QUORUM: &str = "quorum";

/// Well-known key used by the election application when a process starts
/// considering itself the leader.
pub const NOTE_LEADER: &str = "leader";

/// A structured, execution-neutral annotation attached to the trace by a
/// process.
///
/// # Examples
///
/// ```
/// use sfs_asys::{Note, ProcessId};
///
/// let quorum = Note::process_set(
///     "quorum",
///     Some(ProcessId::new(2)),
///     vec![ProcessId::new(0), ProcessId::new(1)],
/// );
/// assert_eq!(quorum.key(), "quorum");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Note {
    /// A free-form key/value fact, e.g. `leader = p0`.
    KeyVal {
        /// Annotation kind.
        key: String,
        /// Annotation payload.
        val: String,
    },
    /// A fact about a set of processes, e.g. the quorum set supporting the
    /// detection of `about`.
    ProcessSet {
        /// Annotation kind (see [`NOTE_QUORUM`]).
        key: String,
        /// The process the set is about, if any (e.g. the suspect).
        about: Option<ProcessId>,
        /// The set itself, sorted ascending.
        set: Vec<ProcessId>,
    },
}

impl Note {
    /// Creates a key/value note.
    pub fn key_val(key: impl Into<String>, val: impl fmt::Display) -> Self {
        Note::KeyVal {
            key: key.into(),
            val: val.to_string(),
        }
    }

    /// Creates a process-set note; the set is sorted for determinism.
    pub fn process_set(
        key: impl Into<String>,
        about: Option<ProcessId>,
        mut set: Vec<ProcessId>,
    ) -> Self {
        set.sort_unstable();
        set.dedup();
        Note::ProcessSet {
            key: key.into(),
            about,
            set,
        }
    }

    /// The annotation kind.
    pub fn key(&self) -> &str {
        match self {
            Note::KeyVal { key, .. } | Note::ProcessSet { key, .. } => key,
        }
    }
}

impl fmt::Display for Note {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Note::KeyVal { key, val } => write!(f, "{key}={val}"),
            Note::ProcessSet { key, about, set } => {
                write!(f, "{key}")?;
                if let Some(p) = about {
                    write!(f, "({p})")?;
                }
                write!(f, "={{")?;
                for (i, p) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_set_is_sorted_and_deduped() {
        let n = Note::process_set(
            NOTE_QUORUM,
            None,
            vec![ProcessId::new(2), ProcessId::new(0), ProcessId::new(2)],
        );
        match n {
            Note::ProcessSet { set, .. } => {
                assert_eq!(set, vec![ProcessId::new(0), ProcessId::new(2)]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn display_round_trips_key() {
        let n = Note::key_val(NOTE_LEADER, ProcessId::new(1));
        assert_eq!(n.key(), NOTE_LEADER);
        assert_eq!(n.to_string(), "leader=p1");
        let s = Note::process_set("quorum", Some(ProcessId::new(3)), vec![ProcessId::new(1)]);
        assert_eq!(s.to_string(), "quorum(p3)={p1}");
    }
}
