//! # sfs-chaos — deterministic fault orchestration
//!
//! The chaos orchestrator for experiment E13: it composes over the
//! `sfs-asys` link seam ([`PartitionSchedule`], [`StormSchedule`]) and the
//! service's crash plumbing to script *unplanned-looking* fault loads that
//! are nevertheless fully determined by a seed:
//!
//! * **Poisson crash arrivals** over virtual time — exponential
//!   inter-arrival gaps sampled by inverse CDF from the vendored rng;
//! * **correlated group failures** — one arrival takes out a run of
//!   neighbouring shards at the same tick;
//! * **flapping partitions** — repeated cut/heal cycles on a victim's
//!   outbound links;
//! * **delay storms** — gray failure: links stay up but pay a delay
//!   surcharge big enough to look dead to a poorly provisioned timeout.
//!
//! The output is a [`ChaosPlan`]: per *(epoch, shard)* overlays that the
//! service's continuous epoch loop applies to each shard run. Crash
//! victims are addressed by *rank from the top* of the shard's current
//! local id range, so the same plan remains meaningful as survivors are
//! relabelled between epochs — and never lands on local `p0`, the
//! designated gray-failure victim. Because the plan only produces
//! schedules and crash scripts consumed through `ClusterSpec`/`NetSpec`,
//! it runs unchanged on the deterministic simulator and the threaded
//! router.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use sfs_asys::{PartitionSchedule, ProcessId, StormSchedule, VirtualTime};

/// Draws one exponential inter-arrival gap with the given mean (in
/// ticks), by inverse CDF over the rng's next 64 bits. The result is
/// clamped to at least 1 tick so arrival sequences always advance.
pub fn exponential_gap(rng: &mut StdRng, mean_ticks: u64) -> u64 {
    // u ∈ [0, 1); 1 - u ∈ (0, 1] keeps ln finite.
    let u = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
    let gap = -(1.0 - u).ln() * mean_ticks as f64;
    (gap.ceil() as u64).max(1)
}

/// The arrival ticks of a Poisson process with mean inter-arrival
/// `mean_ticks`, over `[0, horizon)`. Deterministic per rng state.
pub fn poisson_arrivals(rng: &mut StdRng, mean_ticks: u64, horizon: u64) -> Vec<u64> {
    let mut at = 0u64;
    let mut out = Vec::new();
    loop {
        at = at.saturating_add(exponential_gap(rng, mean_ticks));
        if at >= horizon {
            return out;
        }
        out.push(at);
    }
}

/// The cut windows of a flapping partition: `count` cycles starting at
/// `start`, each severed for `cut_len` ticks then healed for `gap` ticks.
pub fn flapping(start: u64, count: usize, cut_len: u64, gap: u64) -> Vec<(u64, u64)> {
    (0..count as u64)
        .map(|k| {
            let from = start + k * (cut_len + gap);
            (from, from + cut_len)
        })
        .collect()
}

/// The chaos overlay for one shard in one epoch.
///
/// `crashes` are `(rank_from_top, tick)`: rank 0 is the shard's highest
/// current local id, rank 1 the next, and so on — the service resolves
/// ranks against the epoch's actual membership. The flap and storm
/// windows target local `p0`'s *outbound* links (the gray-failure victim
/// seat); instantiate them against a concrete shard size with
/// [`ShardChaos::partitions_for`] / [`ShardChaos::storms_for`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardChaos {
    /// Poisson/correlated crash script: `(rank_from_top, tick)`.
    pub crashes: Vec<(usize, u64)>,
    /// Flapping-partition cut windows `[from, until)` on p0's outbound
    /// links.
    pub flaps: Vec<(u64, u64)>,
    /// Delay-storm window `(from, until, extra_ticks)` on p0's outbound
    /// links.
    pub storm: Option<(u64, u64, u64)>,
}

impl ShardChaos {
    /// Whether this overlay injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.crashes.is_empty() && self.flaps.is_empty() && self.storm.is_none()
    }

    /// The directed pairs `p0 -> pj` for a shard of `n` processes.
    fn outbound_of_p0(n: usize) -> Vec<(ProcessId, ProcessId)> {
        (1..n)
            .map(|j| (ProcessId::new(0), ProcessId::new(j)))
            .collect()
    }

    /// The flap windows as a [`PartitionSchedule`] over local pids
    /// `0..n`.
    pub fn partitions_for(&self, n: usize) -> PartitionSchedule {
        let pairs = Self::outbound_of_p0(n);
        self.flaps
            .iter()
            .fold(PartitionSchedule::new(), |s, &(from, until)| {
                s.cut_links(
                    VirtualTime::from_ticks(from),
                    VirtualTime::from_ticks(until),
                    &pairs,
                )
            })
    }

    /// The storm window as a [`StormSchedule`] over local pids `0..n`.
    pub fn storms_for(&self, n: usize) -> StormSchedule {
        match self.storm {
            None => StormSchedule::new(),
            Some((from, until, extra)) => StormSchedule::new().surge_links(
                VirtualTime::from_ticks(from),
                VirtualTime::from_ticks(until),
                &Self::outbound_of_p0(n),
                extra,
            ),
        }
    }
}

/// Parameters of one chaos soak: how hard, how correlated, and for how
/// long the orchestrator beats on the service.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Number of shards under test.
    pub shards: usize,
    /// Per-shard failure bound (used to derive the default thinning cap).
    pub t: usize,
    /// Epochs in the soak.
    pub epochs: usize,
    /// Virtual-tick horizon of each epoch.
    pub epoch_len: u64,
    /// Ticks at the end of each epoch kept free of new crash arrivals,
    /// so FS1's eventualities discharge before the horizon.
    pub quiet_tail: u64,
    /// Mean inter-arrival gap of the global Poisson crash process.
    pub crash_mean_gap: u64,
    /// Probability that an arrival is a correlated *group* failure.
    pub group_p: f64,
    /// Shards taken out together by a group failure (consecutive ids).
    pub group_size: usize,
    /// Thinning cap: crashes per shard across the whole soak. Keeps the
    /// Poisson load inside each shard's failure budget so one additional
    /// erroneous suspicion still certifies.
    pub max_crashes_per_shard: usize,
    /// Guarantee at least one crash somewhere even if the Poisson draw
    /// is empty (deterministic floor, so every soak exercises FS1).
    pub crash_floor: bool,
    /// Epoch-0 flapping-partition windows on each shard's local p0
    /// outbound links.
    pub flaps: Vec<(u64, u64)>,
    /// Epoch-0 delay-storm window `(from, until, extra)` on each shard's
    /// local p0 outbound links.
    pub storm: Option<(u64, u64, u64)>,
    /// Orchestration seed: the entire plan is a function of this spec.
    pub seed: u64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            shards: 4,
            t: 2,
            epochs: 3,
            epoch_len: 1_000,
            quiet_tail: 250,
            crash_mean_gap: 1_500,
            group_p: 0.25,
            group_size: 2,
            max_crashes_per_shard: 1,
            crash_floor: true,
            flaps: Vec::new(),
            storm: None,
            seed: 0,
        }
    }
}

impl ChaosSpec {
    /// A spec for `shards` shards of failure bound `t`, everything else
    /// defaulted.
    pub fn new(shards: usize, t: usize) -> Self {
        ChaosSpec {
            shards,
            t,
            max_crashes_per_shard: t.saturating_sub(1).max(1),
            ..ChaosSpec::default()
        }
    }

    /// Sets the orchestration seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets epoch count and per-epoch horizon.
    pub fn horizon(mut self, epochs: usize, epoch_len: u64) -> Self {
        self.epochs = epochs;
        self.epoch_len = epoch_len;
        self
    }

    /// Installs epoch-0 flapping cuts (see [`flapping`]).
    pub fn flaps(mut self, windows: Vec<(u64, u64)>) -> Self {
        self.flaps = windows;
        self
    }

    /// Installs the epoch-0 delay storm.
    pub fn storm(mut self, from: u64, until: u64, extra: u64) -> Self {
        self.storm = Some((from, until, extra));
        self
    }

    /// Expands the spec into the full per-(epoch, shard) overlay plan.
    /// Pure: the same spec always yields the same plan.
    pub fn plan(&self) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC4A0_5EED);
        let mut epochs: Vec<Vec<ShardChaos>> =
            vec![vec![ShardChaos::default(); self.shards]; self.epochs];
        let mut count = vec![0usize; self.shards];
        let horizon = self.epoch_len * self.epochs as u64;
        for at in poisson_arrivals(&mut rng, self.crash_mean_gap, horizon) {
            let first = rng.gen_range(0..self.shards);
            let group = if self.group_p > 0.0 && rng.gen_bool(self.group_p) {
                self.group_size.max(1)
            } else {
                1
            };
            for k in 0..group {
                let shard = (first + k) % self.shards;
                if count[shard] >= self.max_crashes_per_shard {
                    continue; // thinning: stay inside the failure budget
                }
                let epoch = (at / self.epoch_len) as usize;
                let tick = (at % self.epoch_len).clamp(1, self.epoch_len - self.quiet_tail);
                epochs[epoch][shard].crashes.push((count[shard], tick));
                count[shard] += 1;
            }
        }
        if self.crash_floor && count.iter().all(|&c| c == 0) && !epochs.is_empty() {
            let tick = (self.epoch_len / 2).clamp(1, self.epoch_len - self.quiet_tail);
            epochs[0][0].crashes.push((0, tick));
        }
        for shard in epochs[0].iter_mut() {
            shard.flaps = self.flaps.clone();
            shard.storm = self.storm;
        }
        ChaosPlan { epochs }
    }
}

/// The expanded chaos plan: one [`ShardChaos`] overlay per
/// *(epoch, shard)*.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    epochs: Vec<Vec<ShardChaos>>,
}

impl ChaosPlan {
    /// The overlay for `shard` in `epoch`. Epochs beyond the planned
    /// horizon (and shards beyond the planned width) are quiet.
    pub fn overlay(&self, epoch: usize, shard: usize) -> ShardChaos {
        self.epochs
            .get(epoch)
            .and_then(|e| e.get(shard))
            .cloned()
            .unwrap_or_default()
    }

    /// Number of planned epochs.
    pub fn epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Total crash events across the whole plan.
    pub fn total_crashes(&self) -> usize {
        self.epochs
            .iter()
            .flat_map(|e| e.iter())
            .map(|s| s.crashes.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_deterministic_and_mean_is_roughly_right() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = poisson_arrivals(&mut r1, 50, 100_000);
        let b = poisson_arrivals(&mut r2, 50, 100_000);
        assert_eq!(a, b, "same seed, same arrivals");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert!(a.iter().all(|&t| t < 100_000));
        // ~2000 expected; allow a generous band.
        assert!((1_500..2_600).contains(&a.len()), "count = {}", a.len());
    }

    #[test]
    fn flapping_windows_tile_without_overlap() {
        let w = flapping(200, 4, 60, 80);
        assert_eq!(w, vec![(200, 260), (340, 400), (480, 540), (620, 680)]);
        assert!(
            w.windows(2).all(|p| p[0].1 <= p[1].0),
            "healed between cuts"
        );
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let spec = ChaosSpec::new(6, 2).seed(42).horizon(3, 800);
        assert_eq!(spec.plan(), spec.plan());
        assert_ne!(
            spec.plan(),
            ChaosSpec::new(6, 2).seed(43).horizon(3, 800).plan(),
            "different seed should (at this density) move arrivals"
        );
    }

    #[test]
    fn thinning_respects_the_per_shard_budget_and_quiet_tail() {
        // A dense arrival stream: without thinning every shard would be
        // hit many times over.
        let spec = ChaosSpec {
            crash_mean_gap: 10,
            ..ChaosSpec::new(5, 2).seed(3)
        };
        let plan = spec.plan();
        let mut per_shard = vec![0usize; spec.shards];
        for epoch in 0..spec.epochs {
            for (shard, seen) in per_shard.iter_mut().enumerate() {
                let overlay = plan.overlay(epoch, shard);
                for &(rank, tick) in &overlay.crashes {
                    assert!(tick >= 1 && tick <= spec.epoch_len - spec.quiet_tail);
                    assert_eq!(rank, *seen, "ranks count up from the top");
                    *seen += 1;
                }
            }
        }
        assert!(per_shard.iter().all(|&c| c <= spec.max_crashes_per_shard));
        assert!(plan.total_crashes() > 0);
    }

    #[test]
    fn correlated_group_failures_hit_consecutive_shards_at_one_tick() {
        let spec = ChaosSpec {
            crash_mean_gap: 400,
            group_p: 1.0,
            group_size: 3,
            max_crashes_per_shard: 8,
            ..ChaosSpec::new(9, 2).seed(11).horizon(1, 4_000)
        };
        let plan = spec.plan();
        // Every arrival is a group of 3: collect (tick -> shards hit) and
        // check at least one tick hits 3 consecutive shards.
        let mut by_tick: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        for shard in 0..spec.shards {
            for &(_, tick) in &plan.overlay(0, shard).crashes {
                by_tick.entry(tick).or_default().push(shard);
            }
        }
        assert!(
            by_tick.values().any(|shards| {
                let mut s = shards.clone();
                s.sort_unstable();
                s.len() == 3
                    && s.windows(2)
                        .all(|w| (w[0] + 1) % spec.shards == w[1] % spec.shards)
            }),
            "no correlated triple found: {by_tick:?}"
        );
    }

    #[test]
    fn crash_floor_guarantees_at_least_one_crash() {
        let spec = ChaosSpec {
            crash_mean_gap: u64::MAX / 4, // essentially no Poisson arrivals
            ..ChaosSpec::new(3, 2).seed(0)
        };
        let plan = spec.plan();
        assert_eq!(plan.total_crashes(), 1, "the deterministic floor fires");
        let (rank, tick) = plan.overlay(0, 0).crashes[0];
        assert_eq!(rank, 0);
        assert!(tick >= 1 && tick <= spec.epoch_len - spec.quiet_tail);
    }

    #[test]
    fn epoch_zero_overlays_carry_flaps_and_storm_for_every_shard() {
        let spec = ChaosSpec::new(3, 2)
            .seed(5)
            .flaps(flapping(200, 3, 60, 80))
            .storm(700, 880, 120);
        let plan = spec.plan();
        for shard in 0..3 {
            let o = plan.overlay(0, shard);
            assert_eq!(o.flaps.len(), 3);
            assert_eq!(o.storm, Some((700, 880, 120)));
            // Instantiated over n = 4: p0's outbound severed mid-flap,
            // reverse direction untouched, storm pays on p0 outbound only.
            let parts = o.partitions_for(4);
            let p = ProcessId::new;
            let t = VirtualTime::from_ticks;
            assert!(parts.severed(p(0), p(3), t(230)));
            assert!(!parts.severed(p(3), p(0), t(230)));
            assert!(!parts.severed(p(0), p(3), t(300)), "healed between flaps");
            let storms = o.storms_for(4);
            assert_eq!(storms.surcharge(p(0), p(1), t(750)), 120);
            assert_eq!(storms.surcharge(p(1), p(0), t(750)), 0);
        }
        // Later epochs are quiet apart from any Poisson crashes.
        for shard in 0..3 {
            let o = plan.overlay(1, shard);
            assert!(o.flaps.is_empty() && o.storm.is_none());
        }
        // Out-of-range lookups are quiet, not a panic.
        assert!(plan.overlay(99, 0).is_quiet());
        assert!(plan.overlay(0, 99).is_quiet());
    }
}
