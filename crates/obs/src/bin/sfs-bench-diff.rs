//! `sfs-bench-diff` — the bench-trajectory regression gate.
//!
//! ```text
//! sfs-bench-diff <baseline-dir> <candidate-dir> \
//!     [--drop 0.35] [--min-events 10000] [--min-wall-ms 50] [-o table.txt]
//! ```
//!
//! Pairs every `BENCH_*.json` record present in both directories,
//! judges each pair with the noise-aware thresholds of
//! `sfs_obs::benchdiff`, prints the regression table, optionally writes
//! it to `-o`, and exits nonzero iff any pair regressed past the
//! threshold on a trustworthy baseline — the contract CI's
//! `bench-regression` job relies on.

use sfs_obs::benchdiff::{diff_dirs, DiffThresholds};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: sfs-bench-diff <baseline-dir> <candidate-dir> \
         [--drop F] [--min-events N] [--min-wall-ms F] [-o FILE]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut thresholds = DiffThresholds::default();
    let mut out_file: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--drop" => {
                let v = args.next().unwrap_or_else(|| usage());
                thresholds.drop = v.parse().unwrap_or_else(|_| usage());
            }
            "--min-events" => {
                let v = args.next().unwrap_or_else(|| usage());
                thresholds.min_events = v.parse().unwrap_or_else(|_| usage());
            }
            "--min-wall-ms" => {
                let v = args.next().unwrap_or_else(|| usage());
                thresholds.min_wall_ms = v.parse().unwrap_or_else(|_| usage());
            }
            "-o" | "--out" => {
                out_file = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "-h" | "--help" => usage(),
            _ => dirs.push(PathBuf::from(arg)),
        }
    }
    let [baseline, candidate] = dirs.as_slice() else {
        usage();
    };

    let diff = match diff_dirs(baseline, candidate, &thresholds) {
        Ok(diff) => diff,
        Err(e) => {
            eprintln!("sfs-bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    let table = diff.render();
    print!("{table}");
    if let Some(path) = out_file {
        if let Err(e) = std::fs::write(&path, &table) {
            eprintln!("sfs-bench-diff: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if diff.any_regression() {
        eprintln!(
            "sfs-bench-diff: throughput regression past {:.0}% on a \
             trustworthy baseline",
            thresholds.drop * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
