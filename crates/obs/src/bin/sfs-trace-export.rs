//! `sfs-trace-export` — convert a saved trace (the `trace_json`
//! interchange format any engine can dump) into Chrome trace-event JSON
//! for Perfetto / `chrome://tracing`.
//!
//! ```text
//! sfs-trace-export <trace.json | -> [-o out.json] [--report]
//! ```
//!
//! `-` reads the trace from stdin; without `-o` the Chrome JSON goes to
//! stdout. `--report` additionally prints (to stderr) the metrics table
//! re-derived from the trace's execution-neutral annotations — detection
//! and suspicion latency, retransmission totals, RTO evolution.

use sfs_obs::chrome::chrome_trace;
use sfs_obs::trace_json::trace_from_json;
use sfs_obs::Registry;
use std::io::Read as _;
use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" | "--output" => {
                output = Some(args.next().ok_or("-o needs a path")?);
            }
            "--report" => report = true,
            "-h" | "--help" => {
                eprintln!("usage: sfs-trace-export <trace.json | -> [-o out.json] [--report]");
                return Ok(());
            }
            _ if input.is_none() => input = Some(arg),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let input = input.ok_or("usage: sfs-trace-export <trace.json | -> [-o out.json] [--report]")?;

    let text = if input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(&input).map_err(|e| format!("reading {input}: {e}"))?
    };

    let trace = trace_from_json(&text).map_err(|e| format!("parsing {input}: {e}"))?;
    let doc = chrome_trace(&trace);
    match &output {
        Some(path) => {
            std::fs::write(path, &doc).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {} events ({} bytes) to {path}",
                trace.events().len(),
                doc.len()
            );
        }
        None => println!("{doc}"),
    }

    if report {
        let reg = Registry::new("trace");
        reg.ingest_trace(&trace);
        eprint!("{}", reg.report().to_table());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sfs-trace-export: {e}");
            ExitCode::FAILURE
        }
    }
}
