//! Bench-trajectory diffing: compares `BENCH_*.json` records across
//! commits with noise-aware thresholds — the library behind the
//! `sfs-bench-diff` binary and CI's `bench-regression` job.
//!
//! Every experiment binary writes a `BENCH_<name>.json` record (see
//! `sfs-bench::report`) whose envelope is stable: `experiment`,
//! `wall_ms`, `events`, `events_per_sec`, `rows`. This module parses
//! that envelope with the crate's hand-rolled [`Json`] parser, pairs
//! records by experiment across a baseline and a candidate directory,
//! and judges each pair:
//!
//! * **Regressed** — candidate throughput (`events_per_sec`) fell more
//!   than the configured fraction below baseline, *and* the baseline
//!   was big enough to trust (absolute floors on `events` and
//!   `wall_ms`). Smoke-sized runs on shared CI runners jitter by tens
//!   of percent; the floors keep the gate quiet where the signal is
//!   noise.
//! * **SmallSample** — the pair differs but the baseline is under the
//!   floors; reported, never fatal.
//! * **Improved / Ok** — informational.
//!
//! The job fails (nonzero exit from the binary) only on `Regressed`.

use crate::json::Json;
use std::fmt;
use std::path::Path;

/// The stable envelope of one `BENCH_*.json` record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Experiment name (`"E11"`, `"E13"`, ...).
    pub experiment: String,
    /// Wall-clock of the measured section, milliseconds.
    pub wall_ms: f64,
    /// Trace events executed across the experiment's runs.
    pub events: u64,
    /// Events per wall second — the throughput the gate judges.
    pub events_per_sec: f64,
    /// Table rows produced.
    pub rows: u64,
}

/// Parses one record's JSON text into its envelope.
///
/// # Errors
///
/// A message naming the missing or malformed field.
pub fn parse_summary(text: &str) -> Result<BenchSummary, String> {
    let json = Json::parse(text)?;
    let field = |key: &str| -> Result<&Json, String> {
        json.get(key)
            .ok_or_else(|| format!("record is missing `{key}`"))
    };
    Ok(BenchSummary {
        experiment: field("experiment")?
            .as_str()
            .ok_or("`experiment` is not a string")?
            .to_owned(),
        wall_ms: field("wall_ms")?
            .as_f64()
            .ok_or("`wall_ms` is not a number")?,
        events: field("events")?
            .as_u64()
            .ok_or("`events` is not an integer")?,
        events_per_sec: field("events_per_sec")?
            .as_f64()
            .ok_or("`events_per_sec` is not a number")?,
        rows: field("rows")?.as_u64().ok_or("`rows` is not an integer")?,
    })
}

/// Noise-aware judging thresholds; see the module docs.
#[derive(Debug, Clone)]
pub struct DiffThresholds {
    /// Fractional throughput drop that counts as a regression (0.35 =
    /// anything slower than 65% of baseline).
    pub drop: f64,
    /// Baselines with fewer events than this are too small to judge.
    pub min_events: u64,
    /// Baselines that ran shorter than this (ms) are too small to judge.
    pub min_wall_ms: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            drop: 0.35,
            min_events: 10_000,
            min_wall_ms: 50.0,
        }
    }
}

/// Verdict for one baseline/candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within thresholds.
    Ok,
    /// Candidate faster than baseline by more than the drop fraction.
    Improved,
    /// Baseline under the size floors: differences reported, not judged.
    SmallSample,
    /// Past-threshold throughput drop on a trustworthy baseline.
    Regressed,
}

impl fmt::Display for DiffStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiffStatus::Ok => "ok",
            DiffStatus::Improved => "improved",
            DiffStatus::SmallSample => "small-sample",
            DiffStatus::Regressed => "REGRESSED",
        })
    }
}

/// One row of the regression table.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Experiment name.
    pub experiment: String,
    /// Baseline envelope.
    pub baseline: BenchSummary,
    /// Candidate envelope.
    pub candidate: BenchSummary,
    /// `candidate.events_per_sec / baseline.events_per_sec`.
    pub throughput_ratio: f64,
    /// The judgement.
    pub status: DiffStatus,
}

/// Judges one baseline/candidate pair.
pub fn diff_summaries(
    baseline: BenchSummary,
    candidate: BenchSummary,
    t: &DiffThresholds,
) -> DiffRow {
    let ratio = if baseline.events_per_sec > 0.0 {
        candidate.events_per_sec / baseline.events_per_sec
    } else {
        1.0
    };
    let trustworthy = baseline.events >= t.min_events && baseline.wall_ms >= t.min_wall_ms;
    let status = if ratio < 1.0 - t.drop {
        if trustworthy {
            DiffStatus::Regressed
        } else {
            DiffStatus::SmallSample
        }
    } else if ratio > 1.0 + t.drop {
        DiffStatus::Improved
    } else {
        DiffStatus::Ok
    };
    DiffRow {
        experiment: baseline.experiment.clone(),
        baseline,
        candidate,
        throughput_ratio: ratio,
        status,
    }
}

/// The result of diffing two directories of `BENCH_*.json` records.
#[derive(Debug, Clone, Default)]
pub struct DirDiff {
    /// One judged row per record present on both sides, sorted by name.
    pub rows: Vec<DiffRow>,
    /// Record files present only in the baseline directory.
    pub only_baseline: Vec<String>,
    /// Record files present only in the candidate directory.
    pub only_candidate: Vec<String>,
}

impl DirDiff {
    /// Whether any judged pair regressed.
    pub fn any_regression(&self) -> bool {
        self.rows.iter().any(|r| r.status == DiffStatus::Regressed)
    }

    /// Renders the regression table, one line per pair plus unmatched
    /// files — the artifact the CI job uploads.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<14} {:>12} {:>12} {:>7} {:>10} {:>10}  status\n",
            "experiment", "base ev/s", "cand ev/s", "ratio", "base ms", "cand ms"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>12.0} {:>12.0} {:>6.2}x {:>10.1} {:>10.1}  {}\n",
                r.experiment,
                r.baseline.events_per_sec,
                r.candidate.events_per_sec,
                r.throughput_ratio,
                r.baseline.wall_ms,
                r.candidate.wall_ms,
                r.status,
            ));
        }
        for name in &self.only_baseline {
            out.push_str(&format!("{name}: missing from candidate\n"));
        }
        for name in &self.only_candidate {
            out.push_str(&format!("{name}: new (no baseline)\n"));
        }
        out
    }
}

fn bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

fn load_summary(dir: &Path, name: &str) -> Result<BenchSummary, String> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_summary(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Diffs every `BENCH_*.json` record present in both directories.
///
/// # Errors
///
/// Unreadable directories or malformed records.
pub fn diff_dirs(
    baseline_dir: &Path,
    candidate_dir: &Path,
    t: &DiffThresholds,
) -> Result<DirDiff, String> {
    let base_names = bench_files(baseline_dir)?;
    let cand_names = bench_files(candidate_dir)?;
    let mut diff = DirDiff::default();
    for name in &base_names {
        if !cand_names.contains(name) {
            diff.only_baseline.push(name.clone());
            continue;
        }
        let baseline = load_summary(baseline_dir, name)?;
        let candidate = load_summary(candidate_dir, name)?;
        diff.rows.push(diff_summaries(baseline, candidate, t));
    }
    diff.only_candidate = cand_names
        .into_iter()
        .filter(|n| !base_names.contains(n))
        .collect();
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(experiment: &str, wall_ms: f64, events: u64) -> String {
        let eps = events as f64 / (wall_ms / 1000.0);
        format!(
            "{{\"experiment\": \"{experiment}\", \"configs\": \"x\", \"seeds\": 1, \
             \"wall_ms\": {wall_ms:.3}, \"events\": {events}, \
             \"events_per_sec\": {eps:.1}, \"threads\": 4, \"rows\": 8, \"table\": null}}"
        )
    }

    #[test]
    fn parses_the_bench_envelope() {
        let s = parse_summary(&record("E11", 120.0, 50_000)).unwrap();
        assert_eq!(s.experiment, "E11");
        assert_eq!(s.events, 50_000);
        assert!(s.events_per_sec > 0.0);
    }

    #[test]
    fn judges_drops_improvements_and_noise() {
        let t = DiffThresholds::default();
        let base = parse_summary(&record("E11", 200.0, 100_000)).unwrap();

        // 2x slower on a trustworthy baseline: regression.
        let slow = parse_summary(&record("E11", 400.0, 100_000)).unwrap();
        assert_eq!(
            diff_summaries(base.clone(), slow, &t).status,
            DiffStatus::Regressed
        );

        // 2x faster: improvement, never fatal.
        let fast = parse_summary(&record("E11", 100.0, 100_000)).unwrap();
        assert_eq!(
            diff_summaries(base.clone(), fast, &t).status,
            DiffStatus::Improved
        );

        // Within the band: ok.
        let close_run = parse_summary(&record("E11", 220.0, 100_000)).unwrap();
        assert_eq!(
            diff_summaries(base.clone(), close_run, &t).status,
            DiffStatus::Ok
        );

        // Tiny baseline: the same 2x drop is only a small-sample note.
        let small_base = parse_summary(&record("E11", 10.0, 500)).unwrap();
        let small_slow = parse_summary(&record("E11", 20.0, 500)).unwrap();
        assert_eq!(
            diff_summaries(small_base, small_slow, &t).status,
            DiffStatus::SmallSample
        );
    }

    #[test]
    fn dir_diff_pairs_by_name_and_flags_regressions() {
        let base = tempdir("benchdiff-base");
        let cand = tempdir("benchdiff-cand");
        std::fs::write(base.join("BENCH_E11.json"), record("E11", 200.0, 100_000)).unwrap();
        std::fs::write(cand.join("BENCH_E11.json"), record("E11", 800.0, 100_000)).unwrap();
        std::fs::write(base.join("BENCH_E12.json"), record("E12", 100.0, 50_000)).unwrap();
        let diff = diff_dirs(&base, &cand, &DiffThresholds::default()).unwrap();
        assert_eq!(diff.rows.len(), 1);
        assert!(diff.any_regression());
        assert_eq!(diff.only_baseline, vec!["BENCH_E12.json"]);
        let table = diff.render();
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("BENCH_E12.json: missing from candidate"));
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&cand).ok();
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sfs-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
