//! The flight recorder: a fixed-size ring of the most recent telemetry
//! events, dumped only when something goes wrong.
//!
//! A [`FlightRecorder`] is an [`ObsSink`], so it can ride the same
//! engine seams as the metrics registry (fan both out with
//! [`crate::fanout`]). It costs O(capacity) memory regardless of run
//! length and is never consulted on the happy path; when a conformance
//! check diverges, a certification gate fails, or a UDP control channel
//! hits its deadline, the harness formats the ring — plus the tail of
//! the merged trace via [`trace_tail`] — into a post-mortem snippet and,
//! when the `SFS_FLIGHT_DIR` environment variable names a directory,
//! writes it there as `<label>.flight.txt` for CI artifact upload.

use sfs_asys::{ObsEvent, ObsHandle, ObsSink, Trace};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Environment variable naming the directory flight dumps are written to.
/// Unset ⇒ dumps are formatted but not persisted.
pub const FLIGHT_DIR_ENV: &str = "SFS_FLIGHT_DIR";

#[derive(Debug)]
struct Ring {
    events: VecDeque<(u64, ObsEvent)>,
    next_seq: u64,
}

/// A bounded ring of recent [`ObsEvent`]s (newest evicts oldest).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                next_seq: 0,
            }),
        })
    }

    /// An [`ObsHandle`] feeding this recorder, for engine builders.
    pub fn handle(self: &Arc<Self>) -> ObsHandle {
        ObsHandle::new(self.clone() as Arc<dyn ObsSink>)
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("flight ring poisoned").next_seq
    }

    /// Formats the ring, oldest first, one event per line.
    pub fn dump(&self) -> String {
        let ring = self.ring.lock().expect("flight ring poisoned");
        let mut out = format!(
            "flight recorder: {} of {} events retained (capacity {})\n",
            ring.events.len(),
            ring.next_seq,
            self.capacity
        );
        for (seq, ev) in &ring.events {
            let line = match ev {
                ObsEvent::Counter {
                    node,
                    class,
                    name,
                    delta,
                } => format!("#{seq:<8} {node} {:<6} {name} += {delta}", class.label()),
                ObsEvent::Gauge {
                    node,
                    class,
                    name,
                    value,
                } => format!("#{seq:<8} {node} {:<6} {name} = {value}", class.label()),
                ObsEvent::Observe {
                    node,
                    class,
                    name,
                    value,
                } => format!("#{seq:<8} {node} {:<6} {name} ~ {value}", class.label()),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

impl ObsSink for FlightRecorder {
    fn record(&self, event: ObsEvent) {
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back((seq, event));
    }
}

/// Formats the last `k` events of `trace`, one per line — the trace-side
/// half of a flight dump.
pub fn trace_tail(trace: &Trace, k: usize) -> String {
    let events = trace.events();
    let start = events.len().saturating_sub(k);
    let mut out = format!(
        "trace tail: events {}..{} of {} (stop: {:?}, end: {})\n",
        start,
        events.len(),
        events.len(),
        trace.stop_reason(),
        trace.end_time().ticks()
    );
    for e in &events[start..] {
        let _ = writeln!(out, "  [{:>8}] #{:<6} {:?}", e.time.ticks(), e.seq, e.kind);
    }
    out
}

/// Writes `body` as `<label>.flight.txt` under [`FLIGHT_DIR_ENV`], if the
/// variable is set. Returns the written path, or `None` when the variable
/// is unset or the write fails (a flight dump must never turn a reported
/// failure into a crash, so IO errors are swallowed).
pub fn dump_to_dir(label: &str, body: &str) -> Option<PathBuf> {
    let dir = std::env::var_os(FLIGHT_DIR_ENV)?;
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let safe: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    let path = dir.join(format!("{safe}.flight.txt"));
    std::fs::write(&path, body).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::{MsgClass, ProcessId};

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let rec = FlightRecorder::new(4);
        let h = rec.handle();
        for i in 0..10u64 {
            h.record(ObsEvent::Counter {
                node: ProcessId::new(0),
                class: MsgClass::App,
                name: "sent",
                delta: i,
            });
        }
        assert_eq!(rec.recorded(), 10);
        let dump = rec.dump();
        assert!(dump.contains("4 of 10 events retained"));
        assert!(dump.contains("#9"), "newest event missing:\n{dump}");
        assert!(!dump.contains("#5 "), "evicted event present:\n{dump}");
        assert!(dump.contains("sent += 9"));
    }

    #[test]
    fn dump_after_wraparound_is_contiguous_and_ordered() {
        // Wrap the ring several times over, then check the dump is
        // exactly the final window — every retained seq contiguous,
        // strictly increasing, ending at the last event recorded.
        let capacity = 7;
        let total = 7 * 3 + 4; // lands mid-window, off the wrap boundary
        let rec = FlightRecorder::new(capacity);
        let h = rec.handle();
        for i in 0..total as u64 {
            h.record(ObsEvent::Gauge {
                node: ProcessId::new((i % 3) as usize),
                class: MsgClass::Infra,
                name: "depth",
                value: i,
            });
        }
        assert_eq!(rec.recorded(), total as u64);
        let dump = rec.dump();
        let seqs: Vec<u64> = dump
            .lines()
            .skip(1) // header
            .map(|l| {
                l.trim_start_matches('#')
                    .split_whitespace()
                    .next()
                    .expect("seq field")
                    .parse()
                    .expect("numeric seq")
            })
            .collect();
        let expect: Vec<u64> = (total as u64 - capacity as u64..total as u64).collect();
        assert_eq!(
            seqs, expect,
            "dump after wraparound is not the ordered final window:\n{dump}"
        );
    }

    #[test]
    fn trace_tail_formats_last_events() {
        use sfs_asys::{SimStats, StopReason, TraceEvent, TraceEventKind, VirtualTime};
        let events = (0..20)
            .map(|i| TraceEvent {
                seq: i,
                time: VirtualTime::from_ticks(i as u64),
                kind: TraceEventKind::Crash {
                    pid: ProcessId::new(0),
                },
            })
            .collect();
        let trace = Trace::from_parts(
            1,
            events,
            StopReason::MaxTime,
            VirtualTime::from_ticks(19),
            SimStats::default(),
        );
        let tail = trace_tail(&trace, 5);
        assert!(tail.contains("events 15..20 of 20"));
        assert!(tail.contains("#19"));
        assert!(!tail.contains("#14 "));
    }
}
