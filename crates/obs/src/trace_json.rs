//! Trace ⇄ JSON round-trip: persist a [`Trace`] to disk and read it back.
//!
//! This is the interchange format behind `sfs-trace-export`: any engine
//! can dump its Lamport-merged trace with [`trace_to_json`], and the
//! exporter (or a later analysis pass, or [`Registry::ingest_trace`])
//! reloads it with [`trace_from_json`] without the producing process
//! still being alive. The format is a single JSON object — `n`, `stop`,
//! `end` (ticks), the `stats` counters, and a flat `events` array — kept
//! deliberately simple because the vendored serde is a no-op stand-in.
//!
//! Numbers are written as exact integers; the parser stores them as
//! `f64`, so identifiers round-trip exactly up to 2^53 — far beyond any
//! value a real run produces.
//!
//! [`Registry::ingest_trace`]: crate::Registry::ingest_trace

use crate::json::{self, Json};
use sfs_asys::{
    MsgId, Note, ProcessId, SimStats, StopReason, TimerId, Trace, TraceEvent, TraceEventKind,
    VirtualTime,
};
use std::fmt::Write as _;

fn stop_label(stop: StopReason) -> &'static str {
    match stop {
        StopReason::Quiescent => "quiescent",
        StopReason::MaxTime => "max-time",
        StopReason::MaxEvents => "max-events",
        StopReason::MaxSteps => "max-steps",
        StopReason::AllCrashed => "all-crashed",
    }
}

fn stop_parse(label: &str) -> Result<StopReason, String> {
    Ok(match label {
        "quiescent" => StopReason::Quiescent,
        "max-time" => StopReason::MaxTime,
        "max-events" => StopReason::MaxEvents,
        "max-steps" => StopReason::MaxSteps,
        "all-crashed" => StopReason::AllCrashed,
        other => return Err(format!("unknown stop reason {other:?}")),
    })
}

fn write_opt_str(out: &mut String, s: &Option<String>) {
    match s {
        Some(s) => json::write_str(out, s),
        None => out.push_str("null"),
    }
}

/// Serializes `trace` to the JSON interchange format.
pub fn trace_to_json(trace: &Trace) -> String {
    let s = trace.stats();
    let mut out = String::with_capacity(64 + trace.events().len() * 48);
    let _ = write!(
        out,
        "{{\"n\":{},\"stop\":\"{}\",\"end\":{},\"stats\":{{\"sent\":{},\"delivered\":{},\"to_crashed\":{},\"dropped\":{},\"duplicated\":{},\"timers\":{},\"crashes\":{},\"detections\":{},\"batches\":{},\"wire_bytes\":{}}},\"events\":[",
        trace.n(),
        stop_label(trace.stop_reason()),
        trace.end_time().ticks(),
        s.messages_sent,
        s.messages_delivered,
        s.messages_to_crashed,
        s.messages_dropped,
        s.messages_duplicated,
        s.timers_fired,
        s.crashes,
        s.detections,
        s.delivery_batches,
        s.wire_bytes,
    );
    for (i, e) in trace.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"seq\":{},\"t\":{}", e.seq, e.time.ticks());
        match &e.kind {
            TraceEventKind::Send {
                from,
                to,
                msg,
                infra,
                payload,
            } => {
                let _ = write!(
                    out,
                    ",\"k\":\"send\",\"from\":{},\"to\":{},\"src\":{},\"mseq\":{},\"infra\":{infra},\"payload\":",
                    from.index(),
                    to.index(),
                    msg.source().index(),
                    msg.seq()
                );
                write_opt_str(&mut out, payload);
            }
            TraceEventKind::Recv {
                by,
                from,
                msg,
                infra,
                payload,
            } => {
                let _ = write!(
                    out,
                    ",\"k\":\"recv\",\"by\":{},\"from\":{},\"src\":{},\"mseq\":{},\"infra\":{infra},\"payload\":",
                    by.index(),
                    from.index(),
                    msg.source().index(),
                    msg.seq()
                );
                write_opt_str(&mut out, payload);
            }
            TraceEventKind::Crash { pid } => {
                let _ = write!(out, ",\"k\":\"crash\",\"pid\":{}", pid.index());
            }
            TraceEventKind::Failed { by, of } => {
                let _ = write!(
                    out,
                    ",\"k\":\"failed\",\"by\":{},\"of\":{}",
                    by.index(),
                    of.index()
                );
            }
            TraceEventKind::TimerFired { pid, timer } => {
                let _ = write!(
                    out,
                    ",\"k\":\"timer\",\"pid\":{},\"timer\":{}",
                    pid.index(),
                    timer.raw()
                );
            }
            TraceEventKind::External { pid, payload } => {
                let _ = write!(out, ",\"k\":\"ext\",\"pid\":{},\"payload\":", pid.index());
                write_opt_str(&mut out, payload);
            }
            TraceEventKind::Note { pid, note } => match note {
                Note::KeyVal { key, val } => {
                    let _ = write!(out, ",\"k\":\"note\",\"pid\":{},\"key\":", pid.index());
                    json::write_str(&mut out, key);
                    out.push_str(",\"val\":");
                    json::write_str(&mut out, val);
                }
                Note::ProcessSet { key, about, set } => {
                    let _ = write!(out, ",\"k\":\"noteset\",\"pid\":{},\"key\":", pid.index());
                    json::write_str(&mut out, key);
                    match about {
                        Some(p) => {
                            let _ = write!(out, ",\"about\":{}", p.index());
                        }
                        None => out.push_str(",\"about\":null"),
                    }
                    out.push_str(",\"set\":[");
                    for (j, p) in set.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}", p.index());
                    }
                    out.push(']');
                }
            },
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid numeric field {key:?}"))
}

fn field_pid(obj: &Json, key: &str) -> Result<ProcessId, String> {
    Ok(ProcessId::new(field_u64(obj, key)? as usize))
}

fn field_opt_str(obj: &Json, key: &str) -> Option<String> {
    obj.get(key).and_then(Json::as_str).map(str::to_owned)
}

/// Parses a trace previously written by [`trace_to_json`].
pub fn trace_from_json(text: &str) -> Result<Trace, String> {
    let doc = Json::parse(text)?;
    let n = field_u64(&doc, "n")? as usize;
    let stop = stop_parse(
        doc.get("stop")
            .and_then(Json::as_str)
            .ok_or("missing stop reason")?,
    )?;
    let end = VirtualTime::from_ticks(field_u64(&doc, "end")?);
    let stats_obj = doc.get("stats").ok_or("missing stats")?;
    let stats = SimStats {
        messages_sent: field_u64(stats_obj, "sent")?,
        messages_delivered: field_u64(stats_obj, "delivered")?,
        messages_to_crashed: field_u64(stats_obj, "to_crashed")?,
        messages_dropped: field_u64(stats_obj, "dropped")?,
        messages_duplicated: field_u64(stats_obj, "duplicated")?,
        timers_fired: field_u64(stats_obj, "timers")?,
        crashes: field_u64(stats_obj, "crashes")?,
        detections: field_u64(stats_obj, "detections")?,
        delivery_batches: field_u64(stats_obj, "batches")?,
        wire_bytes: field_u64(stats_obj, "wire_bytes")?,
    };
    let mut events = Vec::new();
    for ev in doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing events array")?
    {
        let seq = field_u64(ev, "seq")? as usize;
        let time = VirtualTime::from_ticks(field_u64(ev, "t")?);
        let kind = match ev.get("k").and_then(Json::as_str).ok_or("missing kind")? {
            "send" => TraceEventKind::Send {
                from: field_pid(ev, "from")?,
                to: field_pid(ev, "to")?,
                msg: MsgId::new(field_pid(ev, "src")?, field_u64(ev, "mseq")?),
                infra: ev.get("infra").and_then(Json::as_bool).unwrap_or(false),
                payload: field_opt_str(ev, "payload"),
            },
            "recv" => TraceEventKind::Recv {
                by: field_pid(ev, "by")?,
                from: field_pid(ev, "from")?,
                msg: MsgId::new(field_pid(ev, "src")?, field_u64(ev, "mseq")?),
                infra: ev.get("infra").and_then(Json::as_bool).unwrap_or(false),
                payload: field_opt_str(ev, "payload"),
            },
            "crash" => TraceEventKind::Crash {
                pid: field_pid(ev, "pid")?,
            },
            "failed" => TraceEventKind::Failed {
                by: field_pid(ev, "by")?,
                of: field_pid(ev, "of")?,
            },
            "timer" => TraceEventKind::TimerFired {
                pid: field_pid(ev, "pid")?,
                timer: TimerId::new(field_u64(ev, "timer")?),
            },
            "ext" => TraceEventKind::External {
                pid: field_pid(ev, "pid")?,
                payload: field_opt_str(ev, "payload"),
            },
            "note" => TraceEventKind::Note {
                pid: field_pid(ev, "pid")?,
                note: Note::key_val(
                    field_opt_str(ev, "key").ok_or("note without key")?,
                    field_opt_str(ev, "val").ok_or("note without val")?,
                ),
            },
            "noteset" => {
                let set = ev
                    .get("set")
                    .and_then(Json::as_arr)
                    .ok_or("noteset without set")?
                    .iter()
                    .map(|p| p.as_u64().map(|v| ProcessId::new(v as usize)))
                    .collect::<Option<Vec<_>>>()
                    .ok_or("non-numeric pid in noteset")?;
                let about = match ev.get("about") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(ProcessId::new(
                        v.as_u64().ok_or("non-numeric about in noteset")? as usize,
                    )),
                };
                TraceEventKind::Note {
                    pid: field_pid(ev, "pid")?,
                    note: Note::process_set(
                        field_opt_str(ev, "key").ok_or("noteset without key")?,
                        about,
                        set,
                    ),
                }
            }
            other => return Err(format!("unknown event kind {other:?}")),
        };
        events.push(TraceEvent { seq, time, kind });
    }
    Ok(Trace::from_parts(n, events, stop, end, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn round_trips_every_event_kind() {
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let t = |k| VirtualTime::from_ticks(k);
        let events = vec![
            TraceEvent {
                seq: 0,
                time: t(1),
                kind: TraceEventKind::Send {
                    from: p0,
                    to: p1,
                    msg: MsgId::new(p0, 7),
                    infra: true,
                    payload: Some("Ping { k: 3 }".into()),
                },
            },
            TraceEvent {
                seq: 1,
                time: t(2),
                kind: TraceEventKind::Recv {
                    by: p1,
                    from: p0,
                    msg: MsgId::new(p0, 7),
                    infra: true,
                    payload: None,
                },
            },
            TraceEvent {
                seq: 2,
                time: t(3),
                kind: TraceEventKind::Crash { pid: p0 },
            },
            TraceEvent {
                seq: 3,
                time: t(9),
                kind: TraceEventKind::Failed { by: p1, of: p0 },
            },
            TraceEvent {
                seq: 4,
                time: t(10),
                kind: TraceEventKind::TimerFired {
                    pid: p1,
                    timer: TimerId::new(42),
                },
            },
            TraceEvent {
                seq: 5,
                time: t(11),
                kind: TraceEventKind::External {
                    pid: p1,
                    payload: Some("op \"quoted\"".into()),
                },
            },
            TraceEvent {
                seq: 6,
                time: t(12),
                kind: TraceEventKind::Note {
                    pid: p1,
                    note: Note::key_val(metrics::NOTE_RETX, 4u64),
                },
            },
            TraceEvent {
                seq: 7,
                time: t(13),
                kind: TraceEventKind::Note {
                    pid: p1,
                    note: Note::process_set("failed-set", Some(p0), vec![p0, p1]),
                },
            },
        ];
        let stats = SimStats {
            messages_sent: 2,
            messages_delivered: 1,
            wire_bytes: 99,
            ..SimStats::default()
        };
        let trace = Trace::from_parts(2, events, StopReason::Quiescent, t(13), stats);
        let text = trace_to_json(&trace);
        let back = trace_from_json(&text).expect("round-trip parse");
        assert_eq!(back.n(), trace.n());
        assert_eq!(back.stop_reason(), trace.stop_reason());
        assert_eq!(back.end_time(), trace.end_time());
        assert_eq!(back.stats(), trace.stats());
        assert_eq!(back.events(), trace.events());
        // And a second serialization is byte-identical.
        assert_eq!(trace_to_json(&back), text);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(trace_from_json("{}").is_err());
        assert!(trace_from_json("not json").is_err());
        assert!(
            trace_from_json(r#"{"n":1,"stop":"nope","end":0,"stats":{},"events":[]}"#).is_err()
        );
    }
}
