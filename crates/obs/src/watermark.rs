//! Anomaly watermarks: learned-baseline tripwires over the live
//! telemetry stream, dumping the flight recorder *before* a
//! certification gate fails.
//!
//! [`AnomalyWatermarks`] is an [`ObsSink`] meant to ride a
//! [`crate::fanout`] next to the metrics registry and the flight
//! recorder. It learns a per-signal baseline from the first samples of
//! a run, then trips — at most once per signal — when a later sample
//! inflates past the learned baseline by the configured factor:
//!
//! * **queue depth** — `queue_depth` histogram samples from the
//!   threaded router's dispatch loop; a deep inbox is the earliest sign
//!   of a router falling behind its shard.
//! * **RTO inflation** — `rto_ticks` samples (the transport's adaptive
//!   retransmission timeout); a timeout spiralling above its learned
//!   level precedes the false-suspicion storms that break soak
//!   certification.
//! * **false-suspicion rate** — the running ratio of `detections`
//!   counter increments to `crashes` increments; in a clean sFS run
//!   detections track crashes within the cluster fan-out, so a
//!   detections excess flags suspicion churn before the verdict gate
//!   sees it.
//!
//! A trip is recorded (see [`AnomalyWatermarks::trips`]) and, when a
//! flight recorder is attached, its ring is dumped to
//! `<label>-watermark-<signal>.flight.txt` under `SFS_FLIGHT_DIR` — the
//! proactive post-mortem that E13's chaos soak wires in.

use crate::flight;
use crate::metrics;
use crate::FlightRecorder;
use sfs_asys::{ObsEvent, ObsHandle, ObsSink};
use std::sync::{Arc, Mutex};

/// Tuning for the watermark tripwires. The defaults are deliberately
/// loose: watermarks are a smoke alarm for soak runs, not a precision
/// gate, and must stay silent on healthy chaos (E13's fault grid).
#[derive(Debug, Clone)]
pub struct WatermarkConfig {
    /// Samples per signal consumed to learn the baseline mean before
    /// the tripwire arms.
    pub warmup: u64,
    /// A sample trips when it exceeds `inflation × baseline mean`.
    pub inflation: f64,
    /// Absolute floor below which queue-depth samples never trip
    /// (shallow inboxes are noise regardless of ratio).
    pub queue_floor: u64,
    /// Absolute floor below which RTO samples never trip.
    pub rto_floor: u64,
    /// Detections allowed per observed crash (the detection fan-out of
    /// a healthy kill: every survivor detects each victim).
    pub suspicion_fanout: u64,
    /// Detections tolerated before any crash has been observed
    /// (endogenous suspicions in flight are normal; a flood is not).
    pub suspicion_slack: u64,
}

impl Default for WatermarkConfig {
    fn default() -> Self {
        WatermarkConfig {
            warmup: 32,
            inflation: 8.0,
            queue_floor: 256,
            rto_floor: 64,
            suspicion_fanout: 64,
            suspicion_slack: 256,
        }
    }
}

#[derive(Debug, Default)]
struct Baseline {
    count: u64,
    mean: f64,
}

impl Baseline {
    /// Learns during warmup; afterwards reports whether `value` inflates
    /// past the learned mean.
    fn sample(&mut self, value: u64, cfg: &WatermarkConfig, floor: u64) -> bool {
        if self.count < cfg.warmup {
            self.count += 1;
            let v = value as f64;
            self.mean += (v - self.mean) / self.count as f64;
            return false;
        }
        value >= floor && (value as f64) > self.mean.max(1.0) * cfg.inflation
    }
}

#[derive(Debug, Default)]
struct Inner {
    queue: Baseline,
    rto: Baseline,
    detections: u64,
    crashes: u64,
    tripped: Vec<&'static str>,
}

/// The watermark sink; see the module docs.
#[derive(Debug)]
pub struct AnomalyWatermarks {
    label: String,
    config: WatermarkConfig,
    recorder: Option<Arc<FlightRecorder>>,
    inner: Mutex<Inner>,
}

impl AnomalyWatermarks {
    /// Watermarks with default tuning and no flight recorder attached
    /// (trips are recorded but nothing is dumped).
    pub fn new(label: &str) -> Arc<Self> {
        Self::with_config(label, WatermarkConfig::default(), None)
    }

    /// Watermarks that dump `recorder`'s ring on each trip.
    pub fn with_flight(label: &str, recorder: Arc<FlightRecorder>) -> Arc<Self> {
        Self::with_config(label, WatermarkConfig::default(), Some(recorder))
    }

    /// Fully-specified constructor.
    pub fn with_config(
        label: &str,
        config: WatermarkConfig,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Arc<Self> {
        Arc::new(AnomalyWatermarks {
            label: label.to_owned(),
            config,
            recorder,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// An [`ObsHandle`] feeding these watermarks, for [`crate::fanout`].
    pub fn handle(self: &Arc<Self>) -> ObsHandle {
        ObsHandle::new(self.clone() as Arc<dyn ObsSink>)
    }

    /// Signals that have tripped so far, in trip order.
    pub fn trips(&self) -> Vec<&'static str> {
        self.inner
            .lock()
            .expect("watermark poisoned")
            .tripped
            .clone()
    }

    fn trip(&self, inner: &mut Inner, signal: &'static str, value: u64, baseline: f64) {
        if inner.tripped.contains(&signal) {
            return;
        }
        inner.tripped.push(signal);
        let mut body = format!(
            "anomaly watermark tripped: {signal} = {value} \
             (learned baseline {baseline:.1})\n"
        );
        if let Some(rec) = &self.recorder {
            body.push_str(&rec.dump());
        }
        flight::dump_to_dir(&format!("{}-watermark-{signal}", self.label), &body);
    }
}

impl ObsSink for AnomalyWatermarks {
    fn record(&self, event: ObsEvent) {
        let mut inner = self.inner.lock().expect("watermark poisoned");
        match event {
            ObsEvent::Observe { name, value, .. } if name == metrics::QUEUE_DEPTH => {
                let baseline = inner.queue.mean;
                if inner
                    .queue
                    .sample(value, &self.config, self.config.queue_floor)
                {
                    self.trip(&mut inner, "queue-depth", value, baseline);
                }
            }
            ObsEvent::Observe { name, value, .. } if name == metrics::RTO_TICKS => {
                let baseline = inner.rto.mean;
                if inner.rto.sample(value, &self.config, self.config.rto_floor) {
                    self.trip(&mut inner, "rto-inflation", value, baseline);
                }
            }
            ObsEvent::Counter { name, delta, .. } if name == metrics::DETECTIONS => {
                inner.detections += delta;
                let allowance =
                    inner.crashes * self.config.suspicion_fanout + self.config.suspicion_slack;
                if inner.detections > allowance {
                    let (detections, crashes) = (inner.detections, inner.crashes);
                    self.trip(
                        &mut inner,
                        "false-suspicion-rate",
                        detections,
                        crashes as f64,
                    );
                }
            }
            ObsEvent::Counter { name, delta, .. } if name == metrics::CRASHES => {
                inner.crashes += delta;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::{MsgClass, ProcessId};

    fn observe(name: &'static str, value: u64) -> ObsEvent {
        ObsEvent::Observe {
            node: ProcessId::new(0),
            class: MsgClass::None,
            name,
            value,
        }
    }

    fn count(name: &'static str, delta: u64) -> ObsEvent {
        ObsEvent::Counter {
            node: ProcessId::new(0),
            class: MsgClass::None,
            name,
            delta,
        }
    }

    #[test]
    fn queue_watermark_learns_then_trips_once() {
        let wm = AnomalyWatermarks::new("test");
        let h = wm.handle();
        for _ in 0..40 {
            h.record(observe(metrics::QUEUE_DEPTH, 8));
        }
        assert!(wm.trips().is_empty(), "healthy depth must not trip");
        h.record(observe(metrics::QUEUE_DEPTH, 1_000));
        h.record(observe(metrics::QUEUE_DEPTH, 2_000));
        assert_eq!(wm.trips(), vec!["queue-depth"], "trips exactly once");
    }

    #[test]
    fn samples_below_the_floor_never_trip() {
        let wm = AnomalyWatermarks::new("test");
        let h = wm.handle();
        for _ in 0..40 {
            h.record(observe(metrics::QUEUE_DEPTH, 1));
        }
        // 100x the baseline but under the absolute floor.
        h.record(observe(metrics::QUEUE_DEPTH, 100));
        assert!(wm.trips().is_empty());
    }

    #[test]
    fn suspicion_rate_trips_on_detection_flood_without_crashes() {
        let wm = AnomalyWatermarks::new("test");
        let h = wm.handle();
        h.record(count(metrics::CRASHES, 1));
        h.record(count(metrics::DETECTIONS, 64));
        assert!(wm.trips().is_empty(), "one kill's fan-out is healthy");
        h.record(count(metrics::DETECTIONS, 1_000));
        assert_eq!(wm.trips(), vec!["false-suspicion-rate"]);
    }

    #[test]
    fn rto_inflation_trips_against_learned_baseline() {
        let wm = AnomalyWatermarks::new("test");
        let h = wm.handle();
        for _ in 0..40 {
            h.record(observe(metrics::RTO_TICKS, 20));
        }
        h.record(observe(metrics::RTO_TICKS, 30));
        assert!(wm.trips().is_empty(), "mild drift is fine");
        h.record(observe(metrics::RTO_TICKS, 400));
        assert_eq!(wm.trips(), vec!["rto-inflation"]);
    }
}
