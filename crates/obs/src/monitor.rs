//! Streaming sFS property monitors: the online half of the
//! certification story (DESIGN.md §2.13).
//!
//! [`SfsMonitor`] is an [`EventSink`]: attached to any engine through
//! the `ClusterSpec::event_sink` seam it consumes the trace-event
//! stream *live*, one event at a time, and decides the full
//! `check_sfs_suite` verdict vector without ever retaining the trace.
//! Every suite clause is either prefix-monotone (sFS2b, sFS2c,
//! Condition 3 go `Holds → Violated` and stick) or quiescence-decidable
//! (FS1 and sFS2a judge their outstanding obligations when
//! [`SfsMonitor::finish`] is told whether the run completed; sFS2d
//! judges each message at its *last* receive), so the monitor's state
//! stays O(n + active failures + undischarged obligations):
//!
//! * **FS1 / sFS2a** — per-process first-detection lists plus the crash
//!   set; both clauses are judged against the *final* sets at finish,
//!   exactly as the post-hoc checkers do (a detector that later crashes
//!   is excused from FS1, a victim that later crashes discharges
//!   sFS2a).
//! * **sFS2b / Condition 2** — an incremental failed-before digraph
//!   (edge `of → by` per first detection) with online cycle detection:
//!   each new edge triggers one reachability walk from `by` back to
//!   `of`; a hit is a cycle and the verdict sticks.
//! * **sFS2c** — a self-reference automaton: any `failed_i(i)` violates
//!   immediately.
//! * **sFS2d** — a detection-before-delivery gate. A model send by a
//!   process with detections outstanding opens an in-flight obligation
//!   recording *prefix lengths* into the sender's append-only
//!   detection and taint lists (the lists only grow, so a length is a
//!   snapshot); each receive of the message re-judges the obligation
//!   and the last judgement wins — the exact last-receive semantics of
//!   the post-hoc checker under link-level duplication. Judged-clean
//!   obligations are dropped eagerly: detection sets only grow, so a
//!   clean receive can never be followed by a violating duplicate.
//! * **Condition 3** — epidemic taint: `K[p]` is the set of processes
//!   `q` with some `failed_*(q)` in `p`'s causal past, propagated along
//!   exactly the happens-before edges of the model alphabet (program
//!   order plus model send→receive, the same projection
//!   `History::from_trace` keeps); an event of `p` with `p ∈ K[p]` is
//!   causally after a detection of `p`.
//!
//! The monitor never touches engine state — `on_event` sees an
//! immutable borrow of an already-recorded event — so monitored runs
//! are byte-identical to bare runs on the simulator and HB-fingerprint
//! identical on the threaded backends (`obs_equiv` pins this). For the
//! UDP backend, whose nodes live in other OS processes, the per-node
//! event fragments are merged at the parent exactly like the Lamport
//! trace merge and replayed through the same code path
//! ([`replay_fragments`]).

use crate::flight;
use crate::verdict::SuiteVerdicts;
use sfs_asys::{EventSink, EventSinkHandle, MsgId, Trace, TraceEvent, TraceEventKind};
use sfs_tlogic::Verdict;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One in-flight sFS2d/Condition-3 obligation: a model message sent by
/// a process that had detections (or taint) at send time. Prefix
/// lengths into the sender's append-only lists snapshot its state at
/// the send without copying.
#[derive(Debug, Clone, Copy)]
struct Flight {
    from: usize,
    /// Sender detections at send time (`detected[from][..suspects]`).
    suspects: u32,
    /// Sender taint at send time (`taint[from][..taint_len]`).
    taint_len: u32,
    /// Whether the latest receive of this message violated sFS2d.
    violating: bool,
}

/// Per-process monitor fragment: first-detection list, taint list, and
/// membership masks. Lists are append-only so in-flight prefix lengths
/// remain valid snapshots.
#[derive(Debug, Default)]
struct ProcState {
    /// Processes this one has detected, in first-detection order.
    detected: Vec<usize>,
    /// Processes whose detection is in this one's causal past, in
    /// first-taint order.
    taint: Vec<usize>,
    /// Membership mask for `detected`, lazily sized to n.
    detected_mask: Vec<bool>,
    /// Membership mask for `taint`, lazily sized to n.
    taint_mask: Vec<bool>,
}

impl ProcState {
    fn note_detection(&mut self, n: usize, of: usize) -> bool {
        if self.detected_mask.is_empty() {
            self.detected_mask = vec![false; n];
        }
        if self.detected_mask[of] {
            return false;
        }
        self.detected_mask[of] = true;
        self.detected.push(of);
        true
    }

    fn has_detected(&self, of: usize) -> bool {
        self.detected_mask.get(of).copied().unwrap_or(false)
    }

    fn note_taint(&mut self, n: usize, q: usize) {
        if self.taint_mask.is_empty() {
            self.taint_mask = vec![false; n];
        }
        if !self.taint_mask[q] {
            self.taint_mask[q] = true;
            self.taint.push(q);
        }
    }

    fn is_tainted_by(&self, q: usize) -> bool {
        self.taint_mask.get(q).copied().unwrap_or(false)
    }
}

#[derive(Debug)]
struct MonitorState {
    n: usize,
    procs: Vec<ProcState>,
    crashed: Vec<bool>,
    /// Failed-before adjacency: `before[of]` lists each `by` with an
    /// `of → by` edge (detection `failed_by(of)`).
    before: Vec<Vec<usize>>,
    /// In-flight sFS2d/C3 obligations keyed by model message id.
    flights: HashMap<MsgId, Flight>,
    /// Messages whose latest receive violated sFS2d.
    violating_msgs: usize,
    /// Sticky safety violations.
    sfs2b_violated: bool,
    sfs2c_violated: bool,
    cond3_violated: bool,
    /// Whether the violation hook already fired for sFS2d (whose
    /// verdict, unlike the sticky clauses, can clear at a later
    /// receive — the hook still fires at the first violating one).
    sfs2d_fired: bool,
}

impl MonitorState {
    fn new(n: usize) -> Self {
        MonitorState {
            n,
            procs: (0..n).map(|_| ProcState::default()).collect(),
            crashed: vec![false; n],
            before: vec![Vec::new(); n],
            flights: HashMap::new(),
            violating_msgs: 0,
            sfs2b_violated: false,
            sfs2c_violated: false,
            cond3_violated: false,
            sfs2d_fired: false,
        }
    }

    /// Whether `to` is reachable from `from` in the failed-before
    /// digraph — the online cycle check: inserting `of → by` closes a
    /// cycle iff `of` was already reachable from `by`.
    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![from];
        while let Some(p) = stack.pop() {
            if p == to {
                return true;
            }
            if std::mem::replace(&mut seen[p], true) {
                continue;
            }
            stack.extend(self.before[p].iter().copied().filter(|&q| !seen[q]));
        }
        false
    }

    /// Propagates the taint snapshot `procs[from].taint[..len]` into
    /// `by`, returning whether `by` is now in its own causal-detection
    /// set (a Condition 3 violation at this event).
    fn merge_taint(&mut self, from: usize, len: usize, by: usize) -> bool {
        for i in 0..len {
            let q = self.procs[from].taint[i];
            self.procs[by].note_taint(self.n, q);
        }
        self.procs[by].is_tainted_by(by)
    }

    /// Absorbs one model-alphabet event; returns the property name if
    /// a sticky safety clause was violated *by this event*.
    fn step(&mut self, kind: &TraceEventKind) -> Option<&'static str> {
        match *kind {
            TraceEventKind::Send {
                from,
                msg,
                infra: false,
                ..
            } => {
                let from = from.index();
                let suspects = self.procs[from].detected.len() as u32;
                let taint_len = self.procs[from].taint.len() as u32;
                if suspects > 0 || taint_len > 0 {
                    self.flights.insert(
                        msg,
                        Flight {
                            from,
                            suspects,
                            taint_len,
                            violating: false,
                        },
                    );
                }
                None
            }
            TraceEventKind::Recv {
                by,
                msg,
                infra: false,
                ..
            } => {
                let by = by.index();
                let mut flight = self.flights.get(&msg).copied()?;
                let mut fired = None;
                // Condition 3: the receive pulls the sender's causal
                // past (at send time) into the receiver's.
                if self.merge_taint(flight.from, flight.taint_len as usize, by)
                    && !self.cond3_violated
                {
                    self.cond3_violated = true;
                    fired = Some("Condition3");
                }
                // sFS2d: the receiver must already hold every detection
                // the sender held at send time. The *last* receive of a
                // message decides — exactly the post-hoc semantics —
                // and since detection sets only grow, a clean judgement
                // is final and the obligation can be dropped.
                let clean = (0..flight.suspects as usize).all(|i| {
                    let j = self.procs[flight.from].detected[i];
                    self.procs[by].has_detected(j)
                });
                if clean {
                    if flight.violating {
                        self.violating_msgs -= 1;
                    }
                    self.flights.remove(&msg);
                } else if !flight.violating {
                    flight.violating = true;
                    self.violating_msgs += 1;
                    self.flights.insert(msg, flight);
                    if fired.is_none() && !self.sfs2d_fired {
                        self.sfs2d_fired = true;
                        fired = Some("sFS2d");
                    }
                }
                fired
            }
            TraceEventKind::Crash { pid } => {
                let pid = pid.index();
                self.crashed[pid] = true;
                if self.procs[pid].is_tainted_by(pid) && !self.cond3_violated {
                    self.cond3_violated = true;
                    return Some("Condition3");
                }
                None
            }
            TraceEventKind::Failed { by, of } => {
                let (by, of) = (by.index(), of.index());
                let mut fired = None;
                if by == of && !self.sfs2c_violated {
                    self.sfs2c_violated = true;
                    fired = Some("sFS2c");
                }
                if self.procs[by].note_detection(self.n, of) {
                    // New failed-before edge of → by: closes a cycle
                    // iff of was already reachable from by.
                    if !self.sfs2b_violated && self.reaches(by, of) {
                        self.sfs2b_violated = true;
                        fired.get_or_insert("sFS2b");
                    }
                    self.before[of].push(by);
                }
                self.procs[by].note_taint(self.n, of);
                if self.procs[by].is_tainted_by(by) && !self.cond3_violated {
                    self.cond3_violated = true;
                    fired.get_or_insert("Condition3");
                }
                fired
            }
            // Infra traffic, timers, externals, and notes are outside
            // the model alphabet (History::from_trace drops them).
            _ => None,
        }
    }

    /// Judges the quiescence-decidable clauses and assembles the suite
    /// verdict vector, mirroring `check_sfs_suite` clause by clause.
    fn verdicts(&self, complete: bool) -> SuiteVerdicts {
        // FS1: every crashed victim must be detected by every process
        // that did not itself crash (final sets, as post-hoc).
        let fs1_open = (0..self.n).any(|victim| {
            self.crashed[victim]
                && (0..self.n)
                    .any(|j| j != victim && !self.crashed[j] && !self.procs[j].has_detected(victim))
        });
        // sFS2a / Condition 1: every detected process eventually
        // crashes.
        let crash_open = self
            .procs
            .iter()
            .any(|p| p.detected.iter().any(|&of| !self.crashed[of]));
        let liveness = |open: bool| match (open, complete) {
            (false, _) => Verdict::Holds,
            (true, true) => Verdict::Violated,
            (true, false) => Verdict::Vacuous,
        };
        let safety = |violated: bool| {
            if violated {
                Verdict::Violated
            } else {
                Verdict::Holds
            }
        };
        SuiteVerdicts::new([
            liveness(fs1_open),
            liveness(crash_open),
            safety(self.sfs2b_violated),
            safety(self.sfs2c_violated),
            safety(self.violating_msgs > 0),
            liveness(crash_open),
            safety(self.sfs2b_violated),
            safety(self.cond3_violated),
        ])
    }
}

/// A hook invoked (at most once per property) when the monitor sees a
/// sticky safety clause go violated mid-run — the flight recorder's
/// third dump trigger.
pub type ViolationHook = Arc<dyn Fn(&'static str) + Send + Sync>;

/// The streaming sFS suite monitor; see the module docs.
pub struct SfsMonitor {
    state: Mutex<MonitorState>,
    hook: Option<ViolationHook>,
    /// Trace events consumed (model alphabet and infra alike).
    events_seen: AtomicU64,
    /// Wall nanoseconds spent inside `on_event`.
    spent_ns: AtomicU64,
}

impl std::fmt::Debug for SfsMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SfsMonitor")
            .field("events_seen", &self.events_seen.load(Ordering::Relaxed))
            .field("has_hook", &self.hook.is_some())
            .finish_non_exhaustive()
    }
}

impl SfsMonitor {
    /// A monitor for an `n`-process run.
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(SfsMonitor {
            state: Mutex::new(MonitorState::new(n)),
            hook: None,
            events_seen: AtomicU64::new(0),
            spent_ns: AtomicU64::new(0),
        })
    }

    /// A monitor whose mid-run safety violations invoke `hook` — used
    /// to make monitor-detected violations a flight-recorder dump
    /// trigger alongside divergence and certification failure (see
    /// [`flight_dump_hook`]).
    pub fn with_violation_hook(n: usize, hook: ViolationHook) -> Arc<Self> {
        Arc::new(SfsMonitor {
            state: Mutex::new(MonitorState::new(n)),
            hook: Some(hook),
            events_seen: AtomicU64::new(0),
            spent_ns: AtomicU64::new(0),
        })
    }

    /// An [`EventSinkHandle`] feeding this monitor, for
    /// `ClusterSpec::event_sink` / `SimBuilder::event_sink` /
    /// `RuntimeConfig::sink`.
    pub fn handle(self: &Arc<Self>) -> EventSinkHandle {
        EventSinkHandle::new(self.clone() as Arc<dyn EventSink>)
    }

    /// Streams a finished trace through the monitor — the replay path
    /// for engines that cannot feed events live (and the reference path
    /// the differential tests compare against the live feed).
    pub fn ingest_trace(&self, trace: &Trace) {
        for e in trace.events() {
            self.on_event(e);
        }
    }

    /// Judges the run and returns the suite verdict vector. `complete`
    /// must be `trace.stop_reason().is_complete()` — quiescence is what
    /// discharges the FS1/sFS2a completeness watermark; on a truncated
    /// run their open obligations stay `Vacuous`.
    pub fn finish(&self, complete: bool) -> SuiteVerdicts {
        self.state
            .lock()
            .expect("monitor poisoned")
            .verdicts(complete)
    }

    /// Trace events consumed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen.load(Ordering::Relaxed)
    }

    /// Wall nanoseconds spent inside the monitor so far.
    pub fn spent_ns(&self) -> u64 {
        self.spent_ns.load(Ordering::Relaxed)
    }

    /// Mean monitor cost per consumed event, in nanoseconds.
    pub fn ns_per_event(&self) -> u64 {
        let events = self.events_seen().max(1);
        self.spent_ns() / events
    }
}

impl EventSink for SfsMonitor {
    fn on_event(&self, event: &TraceEvent) {
        let start = Instant::now();
        let fired = self
            .state
            .lock()
            .expect("monitor poisoned")
            .step(&event.kind);
        self.events_seen.fetch_add(1, Ordering::Relaxed);
        self.spent_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let (Some(property), Some(hook)) = (fired, &self.hook) {
            hook(property);
        }
    }
}

/// A [`ViolationHook`] that writes a flight dump
/// (`<label>-monitor-<property>.flight.txt` under `SFS_FLIGHT_DIR`) the
/// moment the monitor sees a safety clause break — *before* the run's
/// certification gate fails — with the recorder's recent telemetry as
/// the body.
pub fn flight_dump_hook(label: &str, recorder: Arc<crate::FlightRecorder>) -> ViolationHook {
    let label = label.to_owned();
    Arc::new(move |property| {
        let body = format!("monitor violation: {property}\n{}", recorder.dump());
        flight::dump_to_dir(&format!("{label}-monitor-{property}"), &body);
    })
}

/// Splits a Lamport-merged trace into per-node event fragments, each in
/// merged-sequence order — the shape in which the UDP backend's monitor
/// state travels: every node contributes the substream of events it is
/// attributed, and the parent re-merges by global sequence number.
pub fn fragments_of(trace: &Trace) -> Vec<Vec<TraceEvent>> {
    let mut frags: Vec<Vec<TraceEvent>> = (0..trace.n()).map(|_| Vec::new()).collect();
    for e in trace.events() {
        frags[e.kind.process().index()].push(e.clone());
    }
    frags
}

/// K-way-merges per-node fragments by global sequence number and
/// streams the merged order through `sink` — the parent-side mirror of
/// the Lamport trace merge, used by the UDP leg. Equivalent to
/// [`SfsMonitor::ingest_trace`] on the merged trace (a property the
/// unit tests pin).
pub fn replay_fragments(sink: &EventSinkHandle, fragments: &[Vec<TraceEvent>]) {
    let mut cursors = vec![0usize; fragments.len()];
    loop {
        let mut next: Option<(usize, usize)> = None; // (seq, fragment)
        for (f, frag) in fragments.iter().enumerate() {
            if let Some(e) = frag.get(cursors[f]) {
                if next.is_none_or(|(seq, _)| e.seq < seq) {
                    next = Some((e.seq, f));
                }
            }
        }
        let Some((_, f)) = next else { break };
        sink.on_event(&fragments[f][cursors[f]]);
        cursors[f] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::{ProcessId, SimStats, StopReason, VirtualTime};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn msg(src: usize, seq: u64) -> MsgId {
        MsgId::new(p(src), seq)
    }

    fn trace_of(n: usize, kinds: Vec<TraceEventKind>, stop: StopReason) -> Trace {
        let events: Vec<TraceEvent> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                seq: i,
                time: VirtualTime::from_ticks(i as u64),
                kind,
            })
            .collect();
        Trace::from_parts(n, events, stop, VirtualTime::ZERO, SimStats::default())
    }

    fn send(from: usize, to: usize, m: MsgId) -> TraceEventKind {
        TraceEventKind::Send {
            from: p(from),
            to: p(to),
            msg: m,
            infra: false,
            payload: None,
        }
    }

    fn recv(by: usize, from: usize, m: MsgId) -> TraceEventKind {
        TraceEventKind::Recv {
            by: p(by),
            from: p(from),
            msg: m,
            infra: false,
            payload: None,
        }
    }

    fn failed(by: usize, of: usize) -> TraceEventKind {
        TraceEventKind::Failed {
            by: p(by),
            of: p(of),
        }
    }

    fn crash(pid: usize) -> TraceEventKind {
        TraceEventKind::Crash { pid: p(pid) }
    }

    #[test]
    fn clean_kill_certifies_the_whole_suite() {
        let mon = SfsMonitor::new(3);
        mon.ingest_trace(&trace_of(
            3,
            vec![failed(1, 0), failed(2, 0), crash(0)],
            StopReason::Quiescent,
        ));
        let v = mon.finish(true);
        assert!(v.all_ok(), "{v}");
        assert_eq!(v.verdict_of("FS1"), Some(Verdict::Holds));
    }

    #[test]
    fn fs1_watermark_discharges_only_at_quiescence() {
        let mon = SfsMonitor::new(3);
        mon.ingest_trace(&trace_of(
            3,
            vec![crash(0), failed(1, 0)],
            StopReason::MaxTime,
        ));
        // p2 never detected p0's crash: open obligation, vacuous while
        // the run is truncated...
        assert_eq!(mon.finish(false).verdict_of("FS1"), Some(Verdict::Vacuous));
        // ...and a real violation had the run completed.
        assert_eq!(mon.finish(true).verdict_of("FS1"), Some(Verdict::Violated));
    }

    #[test]
    fn fs1_excuses_detectors_that_crash() {
        let mon = SfsMonitor::new(3);
        mon.ingest_trace(&trace_of(
            3,
            vec![crash(0), crash(2), failed(1, 0), failed(1, 2)],
            StopReason::Quiescent,
        ));
        assert_eq!(mon.finish(true).verdict_of("FS1"), Some(Verdict::Holds));
    }

    #[test]
    fn sfs2a_needs_the_victim_to_crash() {
        let mon = SfsMonitor::new(2);
        mon.ingest_trace(&trace_of(2, vec![failed(1, 0)], StopReason::Quiescent));
        let v = mon.finish(true);
        assert_eq!(v.verdict_of("sFS2a"), Some(Verdict::Violated));
        assert_eq!(v.verdict_of("Condition1"), Some(Verdict::Violated));
    }

    #[test]
    fn sfs2b_cycle_detected_online() {
        let mon = SfsMonitor::new(2);
        mon.ingest_trace(&trace_of(
            2,
            vec![failed(0, 1), failed(1, 0), crash(0), crash(1)],
            StopReason::Quiescent,
        ));
        let v = mon.finish(true);
        assert_eq!(v.verdict_of("sFS2b"), Some(Verdict::Violated));
        assert_eq!(v.verdict_of("Condition2"), Some(Verdict::Violated));
    }

    #[test]
    fn sfs2c_self_detection_violates_immediately() {
        let mon = SfsMonitor::new(2);
        mon.ingest_trace(&trace_of(
            2,
            vec![failed(0, 0), crash(0)],
            StopReason::Quiescent,
        ));
        let v = mon.finish(true);
        assert_eq!(v.verdict_of("sFS2c"), Some(Verdict::Violated));
        // A self-detection is causally after itself: Condition 3 falls
        // with it, exactly as post-hoc.
        assert_eq!(v.verdict_of("Condition3"), Some(Verdict::Violated));
    }

    #[test]
    fn sfs2d_gate_judges_at_the_receive() {
        // p0 detects p2, then messages p1 before p1 knows: violated.
        let mon = SfsMonitor::new(3);
        mon.ingest_trace(&trace_of(
            3,
            vec![
                failed(0, 2),
                send(0, 1, msg(0, 0)),
                recv(1, 0, msg(0, 0)),
                crash(2),
            ],
            StopReason::Quiescent,
        ));
        assert_eq!(
            mon.finish(true).verdict_of("sFS2d"),
            Some(Verdict::Violated)
        );

        // Same exchange with p1 detecting first: holds.
        let mon = SfsMonitor::new(3);
        mon.ingest_trace(&trace_of(
            3,
            vec![
                failed(0, 2),
                send(0, 1, msg(0, 0)),
                failed(1, 2),
                recv(1, 0, msg(0, 0)),
                crash(2),
            ],
            StopReason::Quiescent,
        ));
        assert_eq!(mon.finish(true).verdict_of("sFS2d"), Some(Verdict::Holds));

        // Sends from before the detection carry no obligation.
        let mon = SfsMonitor::new(3);
        mon.ingest_trace(&trace_of(
            3,
            vec![
                send(0, 1, msg(0, 0)),
                failed(0, 2),
                recv(1, 0, msg(0, 0)),
                crash(2),
            ],
            StopReason::Quiescent,
        ));
        assert_eq!(mon.finish(true).verdict_of("sFS2d"), Some(Verdict::Holds));
    }

    #[test]
    fn condition3_taint_rides_the_message_chain() {
        // p0 detects p2 and messages it; p2's receive is an event of
        // the victim causally after its own detection.
        let mon = SfsMonitor::new(3);
        mon.ingest_trace(&trace_of(
            3,
            vec![
                failed(0, 2),
                send(0, 2, msg(0, 0)),
                recv(2, 0, msg(0, 0)),
                crash(2),
            ],
            StopReason::Quiescent,
        ));
        assert_eq!(
            mon.finish(true).verdict_of("Condition3"),
            Some(Verdict::Violated)
        );
    }

    #[test]
    fn infra_traffic_is_outside_the_model_alphabet() {
        let mon = SfsMonitor::new(3);
        let mut kinds = vec![failed(0, 2)];
        kinds.push(TraceEventKind::Send {
            from: p(0),
            to: p(1),
            msg: msg(0, 0),
            infra: true,
            payload: None,
        });
        kinds.push(TraceEventKind::Recv {
            by: p(1),
            from: p(0),
            msg: msg(0, 0),
            infra: true,
            payload: None,
        });
        kinds.push(crash(2));
        mon.ingest_trace(&trace_of(3, kinds, StopReason::Quiescent));
        let v = mon.finish(true);
        assert_eq!(v.verdict_of("sFS2d"), Some(Verdict::Holds));
        assert_eq!(v.verdict_of("Condition3"), Some(Verdict::Holds));
    }

    #[test]
    fn fragment_replay_matches_full_ingestion() {
        let trace = trace_of(
            3,
            vec![
                failed(0, 2),
                send(0, 1, msg(0, 0)),
                recv(1, 0, msg(0, 0)),
                failed(1, 2),
                crash(2),
            ],
            StopReason::Quiescent,
        );
        let whole = SfsMonitor::new(3);
        whole.ingest_trace(&trace);
        let merged = SfsMonitor::new(3);
        replay_fragments(&merged.handle(), &fragments_of(&trace));
        assert_eq!(merged.finish(true), whole.finish(true));
        assert_eq!(merged.events_seen(), whole.events_seen());
    }

    #[test]
    fn violation_hook_fires_once_per_property() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let mon = SfsMonitor::with_violation_hook(
            2,
            Arc::new(move |prop| sink.lock().unwrap().push(prop)),
        );
        mon.ingest_trace(&trace_of(
            2,
            vec![failed(0, 1), failed(1, 0), failed(0, 1), crash(0), crash(1)],
            StopReason::Quiescent,
        ));
        let fired = seen.lock().unwrap().clone();
        assert_eq!(fired, vec!["sFS2b"]);
    }

    #[test]
    fn overhead_counters_track_consumption() {
        let mon = SfsMonitor::new(2);
        mon.ingest_trace(&trace_of(
            2,
            vec![failed(1, 0), crash(0)],
            StopReason::Quiescent,
        ));
        assert_eq!(mon.events_seen(), 2);
        // ns_per_event is total/events; with two events it is defined
        // (possibly zero on a coarse clock).
        let _ = mon.ns_per_event();
    }
}
