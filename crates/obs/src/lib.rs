//! `sfs-obs` — deterministic telemetry for the fail-stop simulation
//! stack: a metrics registry, causal span export, and a flight recorder,
//! shared by all four engines (virtual-time simulator, threaded router,
//! transport-backed runs, and the UDP multi-process backend).
//!
//! # Execution neutrality
//!
//! The whole crate sits strictly *downstream* of the engines: the
//! [`ObsSink`] seam the engines call has no channel back into scheduling
//! state (no RNG, no clock, no queue access), traces are only ever read
//! after a run finishes, and transport metrics are re-derived from
//! annotations the transport already records unconditionally. An
//! obs-enabled run is therefore happened-before-fingerprint-identical to
//! a bare run — a property pinned by the `obs_equiv` conformance tests
//! rather than merely asserted here.
//!
//! # Pieces
//!
//! * [`Registry`] + [`RunReport`] — typed counters, gauges, and
//!   [`LogHistogram`] latency instruments keyed by (node, shard,
//!   message-class), with associative merges so per-shard and
//!   per-process snapshots collapse in any order.
//! * [`chrome::chrome_trace`] — Lamport-merged [`Trace`](sfs_asys::Trace)
//!   → Chrome trace-event JSON for Perfetto, including crash→detection
//!   spans and `span-begin`/`span-end` protocol phases.
//! * [`FlightRecorder`] — a fixed-size ring of recent telemetry, dumped
//!   via [`flight::dump_to_dir`] when a gate fails.
//! * [`trace_json`] — a hand-rolled JSON round-trip for traces, feeding
//!   the `sfs-trace-export` binary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchdiff;
pub mod chrome;
pub mod flight;
pub mod hist;
pub mod json;
pub mod monitor;
pub mod registry;
pub mod report;
pub mod trace_json;
pub mod verdict;
pub mod watermark;

pub use flight::FlightRecorder;
pub use hist::LogHistogram;
pub use json::Json;
pub use monitor::SfsMonitor;
pub use registry::{Metric, MetricKey, Registry};
pub use report::RunReport;
pub use sfs_asys::{EventSink, EventSinkHandle, MsgClass, ObsEvent, ObsHandle, ObsSink};
pub use sfs_tlogic::Verdict;
pub use verdict::SuiteVerdicts;
pub use watermark::AnomalyWatermarks;

use std::sync::Arc;

/// Fans one telemetry stream out to several sinks (e.g. a [`Registry`]
/// and a [`FlightRecorder`] observing the same engine).
pub fn fanout(handles: Vec<ObsHandle>) -> ObsHandle {
    #[derive(Debug)]
    struct Fanout(Vec<ObsHandle>);
    impl ObsSink for Fanout {
        fn record(&self, event: ObsEvent) {
            for h in &self.0 {
                h.record(event);
            }
        }
    }
    ObsHandle::new(Arc::new(Fanout(handles)))
}

/// Metric and annotation names shared across engines and reports.
///
/// Engine-seam names (emitted through [`ObsSink`]) re-export the
/// canonical constants from `sfs_asys::observe::metric`; trace-derived
/// names and the note keys they parse live here.
pub mod metrics {
    pub use sfs_asys::observe::metric::{
        COMPUTE_NS, CRASHES, DELIVERED, DELIVERY_LATENCY, DETECTIONS, DROPPED, DUPLICATED,
        QUEUE_DEPTH, SENT, STALL_NS, TIMERS, TO_CRASHED, WHEEL_OCCUPANCY, WIRE_BYTES,
    };

    /// Counter: datagrams/messages retransmitted (from `retx` notes).
    pub const RETX: &str = "retx";
    /// Histogram: retransmission timeout evolution, in ticks (from `rto`
    /// notes).
    pub const RTO_TICKS: &str = "rto_ticks";
    /// Histogram: crash → `Failed` declaration, in ticks.
    pub const DETECTION_LATENCY: &str = "detection_latency_ticks";
    /// Histogram: crash → first probe suspicion naming the victim, in
    /// ticks.
    pub const SUSPICION_LATENCY: &str = "suspicion_latency_ticks";
    /// Histogram: application operation latency, in ticks (service layer).
    pub const OP_LATENCY: &str = "op_latency_ticks";

    /// Note key the transport writes once per retransmission burst
    /// (value: burst size). Matches `sfs_transport::NOTE_RETX`.
    pub const NOTE_RETX: &str = "retx";
    /// Note key the transport writes when its adaptive RTO changes
    /// (value: new RTO in ticks). Matches `sfs_transport::NOTE_RTO`.
    pub const NOTE_RTO: &str = "rto";
    /// Note key the probe layer writes on first suspicion (value: the
    /// suspect, `p<k>`). Matches `sfs_transport::NOTE_PROBE_SUSPECT`.
    pub const NOTE_PROBE_SUSPECT: &str = "probe-suspect";

    /// Gauge: trace events the streaming sFS monitor consumed.
    pub const MONITOR_EVENTS: &str = "monitor_events";
    /// Gauge: mean monitor cost per consumed event, in nanoseconds.
    pub const MONITOR_NS_PER_EVENT: &str = "monitor_ns_per_event";
    /// Gauge: monitor consumption rate, in events per wall second.
    pub const MONITOR_EVENTS_PER_SEC: &str = "monitor_events_per_sec";

    /// Note key opening a named span (value: span name); paired with
    /// [`SPAN_END`] into Perfetto `B`/`E` slices by the Chrome exporter.
    pub const SPAN_BEGIN: &str = "span-begin";
    /// Note key closing the innermost span with the same value.
    pub const SPAN_END: &str = "span-end";
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::ProcessId;

    #[test]
    fn fanout_feeds_every_sink() {
        let reg_a = Registry::new("sim");
        let reg_b = Registry::new("sim");
        let h = fanout(vec![reg_a.handle(), reg_b.handle()]);
        h.record(ObsEvent::Counter {
            node: ProcessId::new(1),
            class: MsgClass::App,
            name: metrics::SENT,
            delta: 2,
        });
        assert_eq!(reg_a.report().counter_total(metrics::SENT), 2);
        assert_eq!(reg_b.report().counter_total(metrics::SENT), 2);
    }
}
