//! The metrics registry: an [`ObsSink`] that aggregates engine-emitted
//! facts into typed instruments keyed by `(node, shard, message-class,
//! name)`.
//!
//! One registry serves one engine run (or one rayon shard of one); the
//! per-shard registries then collapse into a single
//! [`RunReport`](crate::RunReport) via [`Registry::report`] +
//! [`RunReport::merge`](crate::RunReport::merge) — an order-insensitive
//! fold, because counters add, gauges take the latest-by-max, and the
//! log-bucket histograms merge element-wise.
//!
//! Engines that cannot host a sink in their hot path (the transport
//! wrappers run *inside* processes, the UDP nodes in other OS processes)
//! are covered by [`Registry::ingest_trace`], which re-derives transport
//! metrics — retransmission bursts, RTO evolution, suspicion and
//! detection latency — from the execution-neutral annotations those
//! layers already leave in the [`Trace`].

use crate::hist::LogHistogram;
use crate::metrics;
use sfs_asys::{MsgClass, ObsEvent, ObsHandle, ObsSink, Trace, TraceEventKind, VirtualTime};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The identity of one instrument in a registry or report.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (see [`crate::metrics`]).
    pub name: String,
    /// Shard the sample came from (0 for unsharded engines).
    pub shard: u32,
    /// Process the sample is attributed to.
    pub node: u32,
    /// Message-class attribution.
    pub class: MsgClass,
}

/// One aggregated instrument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// A monotonic counter.
    Counter(u64),
    /// A last-write-wins gauge (merged by max).
    Gauge(u64),
    /// A log-bucketed histogram.
    Hist(LogHistogram),
}

impl Metric {
    /// Folds `other` into `self`; shape mismatches keep `self`'s shape
    /// and fold what they can (counters/gauges add/max their scalars).
    pub fn merge(&mut self, other: &Metric) {
        match (self, other) {
            (Metric::Counter(a), Metric::Counter(b)) => *a += b,
            (Metric::Gauge(a), Metric::Gauge(b)) => *a = (*a).max(*b),
            (Metric::Hist(a), Metric::Hist(b)) => a.merge(b),
            (Metric::Counter(a), Metric::Gauge(b)) | (Metric::Gauge(a), Metric::Counter(b)) => {
                *a = (*a).max(*b)
            }
            (Metric::Hist(a), Metric::Counter(b)) | (Metric::Hist(a), Metric::Gauge(b)) => {
                a.record(*b)
            }
            (Metric::Counter(a), Metric::Hist(b)) | (Metric::Gauge(a), Metric::Hist(b)) => {
                *a += b.count()
            }
        }
    }
}

/// A thread-safe metrics registry; implements [`ObsSink`] so engines can
/// feed it through [`SimBuilder::observe`](sfs_asys::SimBuilder) or
/// `RuntimeConfig::obs`.
#[derive(Debug)]
pub struct Registry {
    engine: String,
    shard: u32,
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl Registry {
    /// A fresh registry for the named engine (`"sim"`, `"threaded"`,
    /// `"transport"`, `"udp"`).
    pub fn new(engine: impl Into<String>) -> Arc<Self> {
        Self::for_shard(engine, 0)
    }

    /// A fresh registry labelled with a shard index, for sharded sweeps
    /// whose per-shard reports merge afterwards.
    pub fn for_shard(engine: impl Into<String>, shard: u32) -> Arc<Self> {
        Arc::new(Registry {
            engine: engine.into(),
            shard,
            inner: Mutex::new(BTreeMap::new()),
        })
    }

    /// An [`ObsHandle`] feeding this registry, for engine builders.
    pub fn handle(self: &Arc<Self>) -> ObsHandle {
        ObsHandle::new(self.clone() as Arc<dyn ObsSink>)
    }

    fn key(&self, node: u32, class: MsgClass, name: &str) -> MetricKey {
        MetricKey {
            name: name.to_owned(),
            shard: self.shard,
            node,
            class,
        }
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, node: u32, class: MsgClass, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        match inner
            .entry(self.key(node, class, name))
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += delta,
            other => other.merge(&Metric::Counter(delta)),
        }
    }

    /// Sets a gauge.
    pub fn set(&self, node: u32, class: MsgClass, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.insert(self.key(node, class, name), Metric::Gauge(value));
    }

    /// Records a histogram sample.
    pub fn observe(&self, node: u32, class: MsgClass, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        match inner
            .entry(self.key(node, class, name))
            .or_insert_with(|| Metric::Hist(LogHistogram::new()))
        {
            Metric::Hist(h) => h.record(value),
            other => {
                let mut h = LogHistogram::new();
                h.record(value);
                other.merge(&Metric::Hist(h));
            }
        }
    }

    /// Snapshots this registry into a report (the registry keeps
    /// accumulating; the snapshot is independent).
    pub fn report(&self) -> crate::RunReport {
        let inner = self.inner.lock().expect("registry poisoned");
        crate::RunReport::from_rows(self.engine.clone(), inner.clone())
    }

    /// Folds the UDP backend's per-node wire accounting — the
    /// [`NodeStatus`](sfs_wire::NodeStatus) counters piggybacked on the
    /// control protocol's Status/Dump frames — into this registry, with
    /// the app/infra message-class split the node loop tracks per send
    /// and per delivery.
    pub fn ingest_node_status(&self, statuses: &[sfs_wire::NodeStatus]) {
        for (pid, s) in statuses.iter().enumerate() {
            let node = pid as u32;
            self.add(node, MsgClass::App, metrics::SENT, s.app_sent);
            self.add(
                node,
                MsgClass::Infra,
                metrics::SENT,
                s.sent.saturating_sub(s.app_sent),
            );
            self.add(node, MsgClass::App, metrics::DELIVERED, s.app_delivered);
            self.add(
                node,
                MsgClass::Infra,
                metrics::DELIVERED,
                s.delivered.saturating_sub(s.app_delivered),
            );
            self.add(node, MsgClass::None, metrics::DROPPED, s.dropped);
            self.add(node, MsgClass::None, metrics::DUPLICATED, s.duplicated);
            self.add(node, MsgClass::None, metrics::TO_CRASHED, s.to_crashed);
            self.add(node, MsgClass::None, metrics::WIRE_BYTES, s.wire_bytes);
            self.add(node, MsgClass::None, metrics::CRASHES, u64::from(s.halted));
        }
    }

    /// Re-derives transport-layer metrics from the execution-neutral
    /// annotations a finished run left in its trace:
    ///
    /// * `retx` notes (one per retransmission burst, value = burst size)
    ///   → the [`metrics::RETX`] counter, attributed to the annotating
    ///   node as infrastructure traffic;
    /// * `rto` notes (current retransmission timeout in ticks) → the
    ///   [`metrics::RTO_TICKS`] histogram — the RTO's evolution over the
    ///   run;
    /// * `probe-suspect` notes naming a previously crashed victim → the
    ///   [`metrics::SUSPICION_LATENCY`] histogram (crash → first
    ///   suspicion, in ticks);
    /// * `Failed` events for a previously crashed victim → the
    ///   [`metrics::DETECTION_LATENCY`] histogram (crash → detection, in
    ///   ticks).
    ///
    /// Works uniformly on traces from all four engines, since all of
    /// them record the same note/event vocabulary.
    pub fn ingest_trace(&self, trace: &Trace) {
        let mut crash_at: BTreeMap<u32, VirtualTime> = BTreeMap::new();
        let mut suspected: BTreeMap<(u32, u32), ()> = BTreeMap::new();
        for e in trace.events() {
            match &e.kind {
                TraceEventKind::Crash { pid } => {
                    crash_at.entry(pid.index() as u32).or_insert(e.time);
                }
                TraceEventKind::Failed { by, of } => {
                    if let Some(&at) = crash_at.get(&(of.index() as u32)) {
                        self.observe(
                            by.index() as u32,
                            MsgClass::None,
                            metrics::DETECTION_LATENCY,
                            e.time.ticks().saturating_sub(at.ticks()),
                        );
                    }
                }
                TraceEventKind::Note { pid, note } => {
                    let sfs_asys::Note::KeyVal { key, val } = note else {
                        continue;
                    };
                    let node = pid.index() as u32;
                    match key.as_str() {
                        metrics::NOTE_RETX => {
                            if let Ok(burst) = val.parse::<u64>() {
                                self.add(node, MsgClass::Infra, metrics::RETX, burst);
                            }
                        }
                        metrics::NOTE_RTO => {
                            if let Ok(rto) = val.parse::<u64>() {
                                self.observe(node, MsgClass::Infra, metrics::RTO_TICKS, rto);
                            }
                        }
                        metrics::NOTE_PROBE_SUSPECT => {
                            // val is the suspect's Display form, "p<k>".
                            let Some(victim) =
                                val.strip_prefix('p').and_then(|s| s.parse::<u32>().ok())
                            else {
                                continue;
                            };
                            if suspected.insert((node, victim), ()).is_none() {
                                if let Some(&at) = crash_at.get(&victim) {
                                    self.observe(
                                        node,
                                        MsgClass::None,
                                        metrics::SUSPICION_LATENCY,
                                        e.time.ticks().saturating_sub(at.ticks()),
                                    );
                                }
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        }
    }
}

impl ObsSink for Registry {
    fn record(&self, event: ObsEvent) {
        match event {
            ObsEvent::Counter {
                node,
                class,
                name,
                delta,
            } => self.add(node.index() as u32, class, name, delta),
            ObsEvent::Gauge {
                node,
                class,
                name,
                value,
            } => self.set(node.index() as u32, class, name, value),
            ObsEvent::Observe {
                node,
                class,
                name,
                value,
            } => self.observe(node.index() as u32, class, name, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::{MsgId, Note, ProcessId, SimStats, StopReason, TraceEvent};

    #[test]
    fn sink_routes_shapes_to_instruments() {
        let reg = Registry::new("sim");
        let handle = reg.handle();
        let node = ProcessId::new(2);
        handle.record(ObsEvent::Counter {
            node,
            class: MsgClass::App,
            name: "sent",
            delta: 3,
        });
        handle.record(ObsEvent::Counter {
            node,
            class: MsgClass::App,
            name: "sent",
            delta: 2,
        });
        handle.record(ObsEvent::Observe {
            node,
            class: MsgClass::App,
            name: "lat",
            value: 40,
        });
        let report = reg.report();
        assert_eq!(report.counter_total("sent"), 5);
        assert_eq!(report.hist("lat").count(), 1);
    }

    #[test]
    fn ingest_derives_latencies_and_retx_from_a_trace() {
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let t = |k| VirtualTime::from_ticks(k);
        let mut events = vec![
            TraceEvent {
                seq: 0,
                time: t(10),
                kind: TraceEventKind::Crash { pid: p1 },
            },
            TraceEvent {
                seq: 1,
                time: t(25),
                kind: TraceEventKind::Note {
                    pid: p0,
                    note: Note::key_val(metrics::NOTE_PROBE_SUSPECT, p1),
                },
            },
            TraceEvent {
                seq: 2,
                time: t(60),
                kind: TraceEventKind::Failed { by: p0, of: p1 },
            },
            TraceEvent {
                seq: 3,
                time: t(61),
                kind: TraceEventKind::Note {
                    pid: p0,
                    note: Note::key_val(metrics::NOTE_RETX, 4u64),
                },
            },
            TraceEvent {
                seq: 4,
                time: t(62),
                kind: TraceEventKind::Note {
                    pid: p0,
                    note: Note::key_val(metrics::NOTE_RTO, 128u64),
                },
            },
        ];
        // A send/recv pair just to keep the trace shaped like a real one.
        events.push(TraceEvent {
            seq: 5,
            time: t(63),
            kind: TraceEventKind::Send {
                from: p0,
                to: p0,
                msg: MsgId::new(p0, 0),
                infra: false,
                payload: None,
            },
        });
        let trace = Trace::from_parts(2, events, StopReason::MaxTime, t(70), SimStats::default());
        let reg = Registry::new("any");
        reg.ingest_trace(&trace);
        let report = reg.report();
        assert_eq!(report.hist(metrics::SUSPICION_LATENCY).max(), 15);
        assert_eq!(report.hist(metrics::DETECTION_LATENCY).max(), 50);
        assert_eq!(report.counter_total(metrics::RETX), 4);
        assert_eq!(report.hist(metrics::RTO_TICKS).max(), 128);
    }
}
