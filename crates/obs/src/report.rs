//! [`RunReport`]: the merged, queryable outcome of one observed run.
//!
//! Per-engine / per-shard / per-process [`Registry`](crate::Registry)
//! snapshots fold into one report with [`RunReport::merge`] — counters
//! add, gauges max, histograms merge element-wise, so the fold is
//! associative and the merge order across rayon shards or UDP node
//! processes never matters. The report renders to JSON (hand-rolled; the
//! vendored serde is a no-op stand-in) for CI artifacts and to a compact
//! text table for terminal use.

use crate::hist::LogHistogram;
use crate::json;
use crate::registry::{Metric, MetricKey};
use sfs_asys::MsgClass;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated metrics for one run (or several merged runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    engine: String,
    rows: BTreeMap<MetricKey, Metric>,
}

impl RunReport {
    /// An empty report for the named engine.
    pub fn empty(engine: impl Into<String>) -> Self {
        RunReport {
            engine: engine.into(),
            rows: BTreeMap::new(),
        }
    }

    pub(crate) fn from_rows(engine: String, rows: BTreeMap<MetricKey, Metric>) -> Self {
        RunReport { engine, rows }
    }

    /// The engine label (`"sim"`, `"threaded"`, `"udp"`, or a `+`-join
    /// after cross-engine merges).
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// All rows, in deterministic (name, shard, node, class) order.
    pub fn rows(&self) -> impl Iterator<Item = (&MetricKey, &Metric)> {
        self.rows.iter()
    }

    /// Number of instruments.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report holds no instruments.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Folds `other` into `self`. Same-key rows combine (add/max/merge by
    /// shape); differing engine labels join with `+`.
    pub fn merge(&mut self, other: &RunReport) {
        if self.engine != other.engine && !other.engine.is_empty() {
            if self.engine.is_empty() {
                self.engine = other.engine.clone();
            } else if !self
                .engine
                .split('+')
                .any(|part| part == other.engine.as_str())
            {
                self.engine.push('+');
                self.engine.push_str(&other.engine);
            }
        }
        for (key, metric) in &other.rows {
            self.rows
                .entry(key.clone())
                .and_modify(|m| m.merge(metric))
                .or_insert_with(|| metric.clone());
        }
    }

    /// Total over every counter row named `name`, across all nodes,
    /// shards, and classes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.rows
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, m)| match m {
                Metric::Counter(c) | Metric::Gauge(c) => *c,
                Metric::Hist(h) => h.count(),
            })
            .sum()
    }

    /// Total over counter rows named `name` restricted to one class.
    pub fn counter_for_class(&self, name: &str, class: MsgClass) -> u64 {
        self.rows
            .iter()
            .filter(|(k, _)| k.name == name && k.class == class)
            .map(|(_, m)| match m {
                Metric::Counter(c) | Metric::Gauge(c) => *c,
                Metric::Hist(h) => h.count(),
            })
            .sum()
    }

    /// The largest value over every gauge row named `name` (gauges
    /// merge by max, so this is the fold's natural read; 0 when none).
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.rows
            .iter()
            .filter(|(k, _)| k.name == name)
            .filter_map(|(_, m)| match m {
                Metric::Gauge(g) => Some(*g),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The merge of every histogram row named `name` (empty when none).
    pub fn hist(&self, name: &str) -> LogHistogram {
        let mut out = LogHistogram::new();
        for (k, m) in &self.rows {
            if k.name == name {
                if let Metric::Hist(h) = m {
                    out.merge(h);
                }
            }
        }
        out
    }

    /// Renders the report as JSON (one `rows` array of flat objects).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"engine\":");
        json::write_str(&mut out, &self.engine);
        out.push_str(",\"rows\":[");
        for (i, (key, metric)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_str(&mut out, &key.name);
            let _ = write!(
                out,
                ",\"shard\":{},\"node\":{},\"class\":\"{}\"",
                key.shard,
                key.node,
                key.class.label()
            );
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"kind\":\"counter\",\"value\":{c}}}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{g}}}");
                }
                Metric::Hist(h) => {
                    let _ = write!(
                        out,
                        ",\"kind\":\"hist\",\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                        h.count(),
                        h.sum(),
                        h.mean(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        h.max()
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Renders a compact per-metric summary table (rows collapsed across
    /// nodes and shards, split by class), for terminal diagnostics.
    pub fn to_table(&self) -> String {
        let mut names: Vec<(&str, MsgClass)> = self
            .rows
            .keys()
            .map(|k| (k.name.as_str(), k.class))
            .collect();
        names.sort_unstable();
        names.dedup();
        let mut out = format!("RunReport [{}]\n", self.engine);
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>14} {:>10} {:>10} {:>10}",
            "metric", "class", "total/count", "p50", "p99", "max"
        );
        for (name, class) in names {
            let mut counter = 0u64;
            let mut hist = LogHistogram::new();
            let mut has_hist = false;
            for (k, m) in &self.rows {
                if k.name != name || k.class != class {
                    continue;
                }
                match m {
                    Metric::Counter(c) | Metric::Gauge(c) => counter += c,
                    Metric::Hist(h) => {
                        hist.merge(h);
                        has_hist = true;
                    }
                }
            }
            if has_hist {
                let _ = writeln!(
                    out,
                    "{:<28} {:>6} {:>14} {:>10} {:>10} {:>10}",
                    name,
                    class.label(),
                    hist.count(),
                    hist.p50(),
                    hist.p99(),
                    hist.max()
                );
            } else {
                let _ = writeln!(
                    out,
                    "{:<28} {:>6} {:>14} {:>10} {:>10} {:>10}",
                    name,
                    class.label(),
                    counter,
                    "-",
                    "-",
                    "-"
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::Registry;

    #[test]
    fn merge_is_order_insensitive_and_json_parses() {
        let a = Registry::for_shard("sim", 0);
        let b = Registry::for_shard("sim", 1);
        a.add(0, MsgClass::App, "sent", 10);
        b.add(0, MsgClass::App, "sent", 5);
        a.observe(1, MsgClass::None, "lat", 100);
        b.observe(1, MsgClass::None, "lat", 200);

        let mut ab = a.report();
        ab.merge(&b.report());
        let mut ba = b.report();
        ba.merge(&a.report());
        assert_eq!(ab, ba);
        assert_eq!(ab.counter_total("sent"), 15);
        assert_eq!(ab.hist("lat").count(), 2);
        assert_eq!(ab.hist("lat").max(), 200);

        let parsed = Json::parse(&ab.to_json()).expect("report JSON must parse");
        assert_eq!(parsed.get("engine").unwrap().as_str(), Some("sim"));
        assert_eq!(parsed.get("rows").unwrap().as_arr().unwrap().len(), 4);
        assert!(ab.to_table().contains("sent"));
    }

    #[test]
    fn cross_engine_merge_joins_labels() {
        let mut r = Registry::new("sim").report();
        r.merge(&Registry::new("udp").report());
        r.merge(&Registry::new("udp").report());
        assert_eq!(r.engine(), "sim+udp");
    }
}
