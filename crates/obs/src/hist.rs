//! Log-bucketed histograms: quantiles without stored samples.
//!
//! A [`LogHistogram`] spends a fixed 496 `u64` buckets to answer
//! p50/p95/p99/max queries over any stream of `u64` samples with bounded
//! relative error. Values `0..=15` get exact unit buckets; larger values
//! land in octave buckets split into 8 sub-buckets each (the value's top
//! three bits after the leading one), so a reported quantile overstates
//! the true sample by at most one sub-bucket width — a relative error of
//! at most 1/8 = 12.5%, usually far less. The maximum is tracked exactly.
//!
//! Merging is element-wise addition and therefore associative and
//! commutative — the property that lets per-shard and per-process
//! registries collapse into one [`RunReport`](crate::RunReport) in any
//! order. The `hist` unit tests and the `sfs-obs` property suite pin
//! bucket boundaries, merge associativity, and the quantile error bound.

/// Number of exact unit buckets (values `0..=EXACT-1` map to themselves).
const EXACT: usize = 16;
/// Sub-buckets per octave: top `SUB_BITS` bits after the leading one.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Octaves covered: values `16..=u64::MAX` span octaves 4..=63.
const OCTAVES: usize = 60;
/// Total bucket count.
const BUCKETS: usize = EXACT + OCTAVES * SUBS;

/// A fixed-size log-bucketed histogram over `u64` samples.
///
/// # Examples
///
/// ```
/// use sfs_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.quantile(0.50);
/// assert!((450..=563).contains(&p50), "p50={p50}");
/// ```
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < EXACT as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros(); // >= 4
        let sub = (value >> (octave - SUB_BITS)) & (SUBS as u64 - 1);
        EXACT + (octave as usize - 4) * SUBS + sub as usize
    }

    /// The largest value mapping to bucket `idx` — what quantile queries
    /// report, making them conservative (never under the true sample).
    pub fn bucket_upper(idx: usize) -> u64 {
        if idx < EXACT {
            return idx as u64;
        }
        let octave = 4 + ((idx - EXACT) / SUBS) as u32;
        let sub = ((idx - EXACT) % SUBS) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        // Lowest value of the octave, plus (sub+1) sub-bucket widths,
        // minus one; the topmost bucket's bound overflows 2^64 and pins
        // to u64::MAX.
        match (1u64 << octave).checked_add((sub + 1).saturating_mul(width)) {
            Some(v) => v - 1,
            None => u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the sample of that rank, clamped to the exact maximum.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q * count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`LogHistogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` (element-wise bucket addition, so merge
    /// order never matters).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

impl PartialEq for LogHistogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}
impl Eq for LogHistogram {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_are_exact() {
        for v in 0..EXACT as u64 {
            assert_eq!(LogHistogram::bucket_index(v), v as usize);
            assert_eq!(LogHistogram::bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_monotone_and_cover() {
        // Every bucket's upper bound is at least as large as any value in
        // it, and bucket indices are monotone in the value.
        let mut prev_idx = 0usize;
        for &v in &[
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1000,
            65_535,
            65_536,
            1 << 40,
            u64::MAX,
        ] {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= prev_idx, "index not monotone at {v}");
            assert!(
                LogHistogram::bucket_upper(idx) >= v,
                "upper({idx}) = {} < {v}",
                LogHistogram::bucket_upper(idx)
            );
            prev_idx = idx;
        }
        assert!(LogHistogram::bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        // The reported bucket upper bound overstates the sample by at
        // most one sub-bucket width: (upper - v) / v <= 1/8.
        for shift in 4..63u32 {
            for off in [0u64, 1, 7, 1 << (shift - 1)] {
                let v = (1u64 << shift) + off;
                let upper = LogHistogram::bucket_upper(LogHistogram::bucket_index(v));
                assert!(upper >= v);
                let err = (upper - v) as f64 / v as f64;
                assert!(err <= 0.125, "err {err} at {v}");
            }
        }
    }

    #[test]
    fn quantiles_track_a_uniform_stream() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let got = h.quantile(q);
            assert!(got >= want, "q{q}: {got} < {want}");
            assert!(
                got as f64 <= want as f64 * 1.125 + 1.0,
                "q{q}: {got} overshoots {want}"
            );
        }
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |lo: u64, hi: u64| {
            let mut h = LogHistogram::new();
            for v in lo..hi {
                h.record(v * v % 7919);
            }
            h
        };
        let (a, b, c) = (mk(0, 100), mk(100, 300), mk(300, 1000));
        // (a + b) + c == a + (b + c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // a + b == b + a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab_c.count(), 1000);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }
}
