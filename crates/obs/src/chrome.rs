//! Causal span export: [`Trace`] → Chrome trace-event JSON.
//!
//! The emitted document loads directly in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`: one process, one thread track per simulated
//! process, virtual ticks rendered as microseconds. Mapping:
//!
//! * `Send` / `Recv` / `TimerFired` / `External` → instant events on the
//!   acting process's track;
//! * `Crash` → an instant plus a track-wide marker;
//! * `Failed { by, of }` → an instant on `by`'s track **and**, when the
//!   victim's crash is in the trace, a `detect p<of>` duration slice on
//!   `by`'s track spanning crash → detection — the detection-latency
//!   span the paper's FS2 analysis is about;
//! * notes with key [`metrics::SPAN_BEGIN`] / [`metrics::SPAN_END`] →
//!   native `B`/`E` slices (the execution-neutral span vocabulary used
//!   for detection rounds, epoch phases, and quiescence handshakes);
//! * every other note → an instant named `key=val`.
//!
//! All export happens post-run on an immutable trace, so it cannot
//! perturb execution by construction.

use crate::json;
use crate::metrics;
use sfs_asys::{Note, Trace, TraceEventKind};
use std::fmt::Write as _;

/// Converts `trace` into a Chrome trace-event JSON document.
pub fn chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |ev: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&ev);
    };

    // Thread-name metadata: one named track per process.
    for pid in 0..trace.n() {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{pid},\"args\":{{\"name\":\"p{pid}\"}}}}"
            ),
            &mut out,
        );
    }

    // Crash times, for detection spans.
    let mut crash_at: Vec<Option<u64>> = vec![None; trace.n()];
    for e in trace.events() {
        if let TraceEventKind::Crash { pid } = e.kind {
            if crash_at[pid.index()].is_none() {
                crash_at[pid.index()] = Some(e.time.ticks());
            }
        }
    }

    for e in trace.events() {
        let ts = e.time.ticks();
        match &e.kind {
            TraceEventKind::Send {
                from,
                to,
                msg,
                infra,
                ..
            } => {
                push(
                    instant(
                        &format!("send\u{2192}p{}", to.index()),
                        ts,
                        from.index(),
                        &format!(
                            "{{\"msg\":\"{}#{}\",\"infra\":{infra}}}",
                            msg.source(),
                            msg.seq()
                        ),
                    ),
                    &mut out,
                );
            }
            TraceEventKind::Recv {
                by,
                from,
                msg,
                infra,
                ..
            } => {
                push(
                    instant(
                        &format!("recv\u{2190}p{}", from.index()),
                        ts,
                        by.index(),
                        &format!(
                            "{{\"msg\":\"{}#{}\",\"infra\":{infra}}}",
                            msg.source(),
                            msg.seq()
                        ),
                    ),
                    &mut out,
                );
            }
            TraceEventKind::Crash { pid } => {
                push(instant("crash", ts, pid.index(), "{}"), &mut out);
            }
            TraceEventKind::Failed { by, of } => {
                push(
                    instant(&format!("failed(p{})", of.index()), ts, by.index(), "{}"),
                    &mut out,
                );
                if let Some(crashed) = crash_at[of.index()] {
                    if crashed <= ts {
                        push(
                            format!(
                                "{{\"ph\":\"X\",\"name\":\"detect p{}\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                                of.index(),
                                by.index(),
                                crashed,
                                ts - crashed
                            ),
                            &mut out,
                        );
                    }
                }
            }
            TraceEventKind::TimerFired { pid, timer } => {
                push(
                    instant(
                        "timer",
                        ts,
                        pid.index(),
                        &format!("{{\"id\":{}}}", timer.raw()),
                    ),
                    &mut out,
                );
            }
            TraceEventKind::External { pid, .. } => {
                push(instant("external", ts, pid.index(), "{}"), &mut out);
            }
            TraceEventKind::Note { pid, note } => match note {
                Note::KeyVal { key, val } if key == metrics::SPAN_BEGIN => {
                    let mut name = String::new();
                    json::write_str(&mut name, val);
                    push(
                        format!(
                            "{{\"ph\":\"B\",\"name\":{name},\"pid\":0,\"tid\":{},\"ts\":{ts}}}",
                            pid.index()
                        ),
                        &mut out,
                    );
                }
                Note::KeyVal { key, val } if key == metrics::SPAN_END => {
                    let mut name = String::new();
                    json::write_str(&mut name, val);
                    push(
                        format!(
                            "{{\"ph\":\"E\",\"name\":{name},\"pid\":0,\"tid\":{},\"ts\":{ts}}}",
                            pid.index()
                        ),
                        &mut out,
                    );
                }
                note => {
                    push(instant(&note.to_string(), ts, pid.index(), "{}"), &mut out);
                }
            },
        }
    }
    out.push_str("]}");
    out
}

fn instant(name: &str, ts: u64, tid: usize, args: &str) -> String {
    let mut quoted = String::new();
    json::write_str(&mut quoted, name);
    let mut ev = String::new();
    let _ = write!(
        ev,
        "{{\"ph\":\"i\",\"s\":\"t\",\"name\":{quoted},\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"args\":{args}}}"
    );
    ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use sfs_asys::{MsgId, ProcessId, SimStats, StopReason, TraceEvent, VirtualTime};

    #[test]
    fn export_parses_and_contains_detection_span() {
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);
        let t = |k| VirtualTime::from_ticks(k);
        let events = vec![
            TraceEvent {
                seq: 0,
                time: t(1),
                kind: TraceEventKind::Send {
                    from: p0,
                    to: p1,
                    msg: MsgId::new(p0, 0),
                    infra: false,
                    payload: None,
                },
            },
            TraceEvent {
                seq: 1,
                time: t(5),
                kind: TraceEventKind::Crash { pid: p1 },
            },
            TraceEvent {
                seq: 2,
                time: t(40),
                kind: TraceEventKind::Failed { by: p0, of: p1 },
            },
            TraceEvent {
                seq: 3,
                time: t(41),
                kind: TraceEventKind::Note {
                    pid: p0,
                    note: Note::key_val(metrics::SPAN_BEGIN, "epoch-1"),
                },
            },
            TraceEvent {
                seq: 4,
                time: t(50),
                kind: TraceEventKind::Note {
                    pid: p0,
                    note: Note::key_val(metrics::SPAN_END, "epoch-1"),
                },
            },
        ];
        let trace = Trace::from_parts(2, events, StopReason::MaxTime, t(50), SimStats::default());
        let doc = chrome_trace(&trace);
        let parsed = Json::parse(&doc).expect("chrome JSON must parse");
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!evs.is_empty());
        let find = |ph: &str, name_part: &str| {
            evs.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some(ph)
                    && e.get("name")
                        .and_then(Json::as_str)
                        .is_some_and(|n| n.contains(name_part))
            })
        };
        assert!(find("X", "detect p1"), "missing detection span");
        assert!(
            find("B", "epoch-1") && find("E", "epoch-1"),
            "missing phase span"
        );
        assert!(find("i", "crash"), "missing crash instant");
        // The detection span's duration is crash→failed.
        let span = evs
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(35));
    }
}
