//! Minimal hand-rolled JSON: a string-escaping writer and a small
//! recursive-descent parser.
//!
//! The workspace's vendored `serde` is an offline no-op stand-in (its
//! derives expand to nothing), so everything that needs real JSON — the
//! Chrome trace exporter, the `RunReport` artifact, the trace round-trip
//! behind `sfs-trace-export` — writes and reads it by hand through this
//! module. The subset is exactly what those producers emit: objects,
//! arrays, strings with `\uXXXX`-free escapes, `u64`/`i64`/`f64` numbers,
//! booleans, and `null`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64` (integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is normalized (sorted) by the map.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` as one JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map, if an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf8 in string".into());
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("short \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        let c = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_parser_unescapes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let parsed = Json::parse(&out).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn round_trips_nested_structure() {
        let text = r#"{"a":[1,2.5,-3],"b":{"x":true,"y":null},"s":"hi"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("x").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert!(Json::parse("{bad").is_err());
        assert!(Json::parse("[1,2]extra").is_err());
    }
}
