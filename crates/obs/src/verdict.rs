//! Verdict vectors for the streaming sFS monitors: the fixed-order
//! suite the online monitor emits, comparable clause-by-clause against
//! the post-hoc `check_sfs_suite` reports.
//!
//! The monitor and the trace-based checker must agree *exactly* — the
//! differential proptest in `sfs-apps` and the kept-trace rows of the
//! E13 soak pin `SuiteVerdicts::from_reports(&check_sfs_suite(..)) ==
//! monitor.finish(..)` on every instance — so this module fixes the
//! property names and their order once, in the order `check_sfs_suite`
//! returns them.

use sfs_tlogic::{PropertyReport, Verdict};
use std::fmt;

/// The eight suite properties, in `check_sfs_suite` order.
pub const SUITE_PROPERTIES: [&str; 8] = [
    "FS1",
    "sFS2a",
    "sFS2b",
    "sFS2c",
    "sFS2d",
    "Condition1",
    "Condition2",
    "Condition3",
];

/// One verdict per suite property, in [`SUITE_PROPERTIES`] order.
///
/// Equality is clause-by-clause verdict equality — the relation the
/// online/post-hoc differential tests assert. Violation *details* are
/// deliberately not part of the vector: the streaming monitor keeps
/// O(n + active failures) state and cannot afford the post-hoc
/// checkers' exhaustive violation enumerations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteVerdicts {
    verdicts: [Verdict; 8],
}

impl SuiteVerdicts {
    /// Builds the vector from explicit verdicts in suite order.
    pub fn new(verdicts: [Verdict; 8]) -> Self {
        SuiteVerdicts { verdicts }
    }

    /// Projects a post-hoc `check_sfs_suite` report list onto its
    /// verdict vector. Reports beyond the eight suite properties (e.g.
    /// a Theorem 5 entry appended by callers) are ignored; a missing
    /// suite property panics, since comparing misaligned suites would
    /// silently certify nothing.
    pub fn from_reports(reports: &[PropertyReport]) -> Self {
        let verdicts = SUITE_PROPERTIES.map(|name| {
            reports
                .iter()
                .find(|r| r.property == name)
                .unwrap_or_else(|| panic!("suite report list is missing {name}"))
                .verdict
        });
        SuiteVerdicts { verdicts }
    }

    /// The verdict for a named suite property.
    pub fn verdict_of(&self, property: &str) -> Option<Verdict> {
        SUITE_PROPERTIES
            .iter()
            .position(|&p| p == property)
            .map(|i| self.verdicts[i])
    }

    /// Iterates `(property, verdict)` pairs in suite order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Verdict)> + '_ {
        SUITE_PROPERTIES
            .iter()
            .zip(self.verdicts.iter())
            .map(|(&p, &v)| (p, v))
    }

    /// Whether no property is violated (the `suite_ok` mirror: `Holds`
    /// and `Vacuous` both pass).
    pub fn all_ok(&self) -> bool {
        self.verdicts.iter().all(|v| *v != Verdict::Violated)
    }

    /// The first violated property, if any.
    pub fn first_violation(&self) -> Option<&'static str> {
        self.iter()
            .find(|&(_, v)| v == Verdict::Violated)
            .map(|(p, _)| p)
    }
}

impl fmt::Display for SuiteVerdicts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (p, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{p}={v:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_reports_projects_and_ignores_extras() {
        let mut reports: Vec<PropertyReport> = SUITE_PROPERTIES
            .iter()
            .map(|&p| PropertyReport::holds(p))
            .collect();
        reports.push(PropertyReport::vacuous("Theorem5"));
        let v = SuiteVerdicts::from_reports(&reports);
        assert!(v.all_ok());
        assert_eq!(v.verdict_of("sFS2d"), Some(Verdict::Holds));
        assert_eq!(v.verdict_of("Theorem5"), None);
        assert_eq!(v.first_violation(), None);
    }

    #[test]
    fn display_and_violation_ordering() {
        let mut verdicts = [Verdict::Holds; 8];
        verdicts[2] = Verdict::Violated; // sFS2b
        verdicts[7] = Verdict::Violated; // Condition3
        let v = SuiteVerdicts::new(verdicts);
        assert!(!v.all_ok());
        assert_eq!(v.first_violation(), Some("sFS2b"));
        let line = v.to_string();
        assert!(line.contains("sFS2b=Violated"));
        assert!(line.contains("FS1=Holds"));
    }

    #[test]
    #[should_panic(expected = "missing sFS2a")]
    fn from_reports_panics_on_missing_property() {
        let reports = vec![PropertyReport::holds("FS1")];
        let _ = SuiteVerdicts::from_reports(&reports);
    }
}
