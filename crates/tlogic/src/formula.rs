//! A small linear-temporal-logic engine over finite run prefixes.
//!
//! The paper specifies properties with predicate logic over global states
//! and linear-time temporal logic over runs ([Pne77]): `□P` ("always P")
//! and `◇P` ("eventually P") over suffixes, with the stable predicates
//! `SEND_i(j,m)`, `RECV_i(j,m)`, `CRASH_i`, and `FAILED_i(j)`.
//!
//! We evaluate formulas over the *states* of a finite history prefix.
//! State `k` is the global state after the first `k` events; a history of
//! `len` events has states `0..=len`. Semantics are the standard
//! finite-trace ones:
//!
//! * `(s, k) ⊨ ◇P` iff `P` holds at some state `j ≥ k` *within the
//!   prefix*;
//! * `(s, k) ⊨ □P` iff `P` holds at every state `j ≥ k` of the prefix.
//!
//! For runs that stopped at quiescence this decides the paper's infinite
//! semantics for the properties we check (all atoms are stable, so a `◇`
//! that has not fired by a quiescent end never will). For truncated runs,
//! `◇` may be a false negative; the higher-level checkers in
//! [`crate::properties`] account for that with a `Vacuous` verdict.

use sfs_asys::{MsgId, ProcessId};
use sfs_history::{Event, History};
use std::collections::HashMap;
use std::fmt;

/// A stable state predicate of the paper's logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `CRASH_i`: process `i` has crashed.
    Crashed(ProcessId),
    /// `FAILED_by(of)`: `by` has detected the failure of `of`.
    FailedBy {
        /// The detecting process.
        by: ProcessId,
        /// The detected process.
        of: ProcessId,
    },
    /// `SEND_from(to, m)`: `from` has sent `m` to `to`. With `msg = None`,
    /// "has sent *some* message to `to`".
    Sent {
        /// The sender.
        from: ProcessId,
        /// The destination.
        to: ProcessId,
        /// A specific message, or any.
        msg: Option<MsgId>,
    },
    /// `RECV_by(from, m)`: `by` has received `m` from `from`. With
    /// `msg = None`, "has received *some* message from `from`".
    Received {
        /// The receiver.
        by: ProcessId,
        /// The original sender.
        from: ProcessId,
        /// A specific message, or any.
        msg: Option<MsgId>,
    },
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Crashed(i) => write!(f, "CRASH_{i}"),
            Atom::FailedBy { by, of } => write!(f, "FAILED_{by}({of})"),
            Atom::Sent {
                from,
                to,
                msg: Some(m),
            } => write!(f, "SEND_{from}({to},{m})"),
            Atom::Sent {
                from,
                to,
                msg: None,
            } => write!(f, "SEND_{from}({to},*)"),
            Atom::Received {
                by,
                from,
                msg: Some(m),
            } => write!(f, "RECV_{by}({from},{m})"),
            Atom::Received {
                by,
                from,
                msg: None,
            } => write!(f, "RECV_{by}({from},*)"),
        }
    }
}

/// A temporal formula over [`Atom`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// A stable state predicate.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Material implication.
    Implies(Box<Formula>, Box<Formula>),
    /// `□F`: F holds at every state from here on.
    Always(Box<Formula>),
    /// `◇F`: F holds at some state from here on (within the prefix).
    Eventually(Box<Formula>),
}

impl Formula {
    /// `□F`.
    pub fn always(f: Formula) -> Formula {
        Formula::Always(Box::new(f))
    }

    /// `◇F`.
    pub fn eventually(f: Formula) -> Formula {
        Formula::Eventually(Box::new(f))
    }

    /// `F ⇒ G`.
    pub fn implies(f: Formula, g: Formula) -> Formula {
        Formula::Implies(Box::new(f), Box::new(g))
    }

    /// `¬F`.
    // Deliberately named after the connective, like `always`/`eventually`;
    // this is a constructor taking the operand by value, not a negation of
    // an existing formula, so `std::ops::Not` would be the wrong shape.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// The atom `CRASH_i`.
    pub fn crashed(i: ProcessId) -> Formula {
        Formula::Atom(Atom::Crashed(i))
    }

    /// The atom `FAILED_by(of)`.
    pub fn failed_by(by: ProcessId, of: ProcessId) -> Formula {
        Formula::Atom(Atom::FailedBy { by, of })
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(x) => write!(f, "¬({x})"),
            Formula::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} ⇒ {b})"),
            Formula::Always(x) => write!(f, "□({x})"),
            Formula::Eventually(x) => write!(f, "◇({x})"),
        }
    }
}

/// Per-state evaluation of formulas over one history.
///
/// # Examples
///
/// ```
/// use sfs_asys::ProcessId;
/// use sfs_history::{Event, History};
/// use sfs_tlogic::{Evaluator, Formula};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let h = History::new(2, vec![Event::crash(p0), Event::failed(p1, p0)]);
/// let eval = Evaluator::new(&h);
/// // FS2 for this pair: □(FAILED_p1(p0) ⇒ CRASH_p0)
/// let fs2 = Formula::always(Formula::implies(
///     Formula::failed_by(p1, p0),
///     Formula::crashed(p0),
/// ));
/// assert!(eval.holds(&fs2));
/// ```
#[derive(Debug)]
pub struct Evaluator {
    len: usize,
    /// First *state* index at which each atom holds (atoms are stable).
    crash_time: HashMap<ProcessId, usize>,
    failed_time: HashMap<(ProcessId, ProcessId), usize>,
    sent_specific: HashMap<(ProcessId, ProcessId, MsgId), usize>,
    sent_any: HashMap<(ProcessId, ProcessId), usize>,
    recv_specific: HashMap<(ProcessId, ProcessId, MsgId), usize>,
    recv_any: HashMap<(ProcessId, ProcessId), usize>,
}

impl Evaluator {
    /// Scans the history once and indexes all atoms.
    pub fn new(h: &History) -> Self {
        let mut ev = Evaluator {
            len: h.len(),
            crash_time: HashMap::new(),
            failed_time: HashMap::new(),
            sent_specific: HashMap::new(),
            sent_any: HashMap::new(),
            recv_specific: HashMap::new(),
            recv_any: HashMap::new(),
        };
        for (i, e) in h.events().iter().enumerate() {
            // The predicate becomes true in the state AFTER the event.
            let t = i + 1;
            match *e {
                Event::Crash { pid } => {
                    ev.crash_time.entry(pid).or_insert(t);
                }
                Event::Failed { by, of } => {
                    ev.failed_time.entry((by, of)).or_insert(t);
                }
                Event::Send { from, to, msg } => {
                    ev.sent_specific.entry((from, to, msg)).or_insert(t);
                    ev.sent_any.entry((from, to)).or_insert(t);
                }
                Event::Recv { by, from, msg } => {
                    ev.recv_specific.entry((from, by, msg)).or_insert(t);
                    ev.recv_any.entry((from, by)).or_insert(t);
                }
                Event::Internal { .. } => {}
            }
        }
        ev
    }

    /// Number of states (`len + 1` for a history of `len` events).
    pub fn states(&self) -> usize {
        self.len + 1
    }

    fn atom_first_true(&self, atom: &Atom) -> Option<usize> {
        match *atom {
            Atom::Crashed(i) => self.crash_time.get(&i).copied(),
            Atom::FailedBy { by, of } => self.failed_time.get(&(by, of)).copied(),
            Atom::Sent {
                from,
                to,
                msg: Some(m),
            } => self.sent_specific.get(&(from, to, m)).copied(),
            Atom::Sent {
                from,
                to,
                msg: None,
            } => self.sent_any.get(&(from, to)).copied(),
            Atom::Received {
                by,
                from,
                msg: Some(m),
            } => self.recv_specific.get(&(from, by, m)).copied(),
            Atom::Received {
                by,
                from,
                msg: None,
            } => self.recv_any.get(&(from, by)).copied(),
        }
    }

    /// Evaluates `f` at every state; index `k` of the result is
    /// `(run, k) ⊨ f`.
    pub fn eval(&self, f: &Formula) -> Vec<bool> {
        let states = self.states();
        match f {
            Formula::True => vec![true; states],
            Formula::False => vec![false; states],
            Formula::Atom(a) => {
                let first = self.atom_first_true(a).unwrap_or(usize::MAX);
                (0..states).map(|k| k >= first).collect()
            }
            Formula::Not(x) => self.eval(x).into_iter().map(|b| !b).collect(),
            Formula::And(xs) => {
                let mut acc = vec![true; states];
                for x in xs {
                    for (a, b) in acc.iter_mut().zip(self.eval(x)) {
                        *a &= b;
                    }
                }
                acc
            }
            Formula::Or(xs) => {
                let mut acc = vec![false; states];
                for x in xs {
                    for (a, b) in acc.iter_mut().zip(self.eval(x)) {
                        *a |= b;
                    }
                }
                acc
            }
            Formula::Implies(a, b) => {
                let va = self.eval(a);
                let vb = self.eval(b);
                va.into_iter().zip(vb).map(|(x, y)| !x || y).collect()
            }
            Formula::Always(x) => {
                let v = self.eval(x);
                let mut out = vec![false; states];
                let mut all = true;
                for k in (0..states).rev() {
                    all &= v[k];
                    out[k] = all;
                }
                out
            }
            Formula::Eventually(x) => {
                let v = self.eval(x);
                let mut out = vec![false; states];
                let mut any = false;
                for k in (0..states).rev() {
                    any |= v[k];
                    out[k] = any;
                }
                out
            }
        }
    }

    /// `r ⊨ f`: whether `f` holds at state 0.
    pub fn holds(&self, f: &Formula) -> bool {
        self.eval(f)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::MsgId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample() -> History {
        let m = MsgId::new(p(0), 0);
        History::new(
            2,
            vec![
                Event::send(p(0), p(1), m),
                Event::recv(p(1), p(0), m),
                Event::crash(p(0)),
                Event::failed(p(1), p(0)),
            ],
        )
    }

    #[test]
    fn atoms_become_true_after_their_event() {
        let h = sample();
        let ev = Evaluator::new(&h);
        let crash = Formula::crashed(p(0));
        assert_eq!(ev.eval(&crash), vec![false, false, false, true, true]);
    }

    #[test]
    fn atoms_are_stable() {
        let h = sample();
        let ev = Evaluator::new(&h);
        for atom in [
            Formula::crashed(p(0)),
            Formula::failed_by(p(1), p(0)),
            Formula::Atom(Atom::Sent {
                from: p(0),
                to: p(1),
                msg: None,
            }),
        ] {
            let v = ev.eval(&atom);
            let mut seen_true = false;
            for b in v {
                if seen_true {
                    assert!(b, "stable atom became false again");
                }
                seen_true |= b;
            }
        }
    }

    #[test]
    fn fs2_holds_on_fs_ordered_history() {
        let h = sample();
        let ev = Evaluator::new(&h);
        let fs2 = Formula::always(Formula::implies(
            Formula::failed_by(p(1), p(0)),
            Formula::crashed(p(0)),
        ));
        assert!(ev.holds(&fs2));
    }

    #[test]
    fn fs2_fails_when_detection_precedes_crash() {
        let h = History::new(2, vec![Event::failed(p(1), p(0)), Event::crash(p(0))]);
        let ev = Evaluator::new(&h);
        let fs2 = Formula::always(Formula::implies(
            Formula::failed_by(p(1), p(0)),
            Formula::crashed(p(0)),
        ));
        assert!(!ev.holds(&fs2));
        // But the sFS2a weakening — ◇CRASH instead of CRASH — holds:
        let sfs2a = Formula::always(Formula::implies(
            Formula::failed_by(p(1), p(0)),
            Formula::eventually(Formula::crashed(p(0))),
        ));
        assert!(ev.holds(&sfs2a));
    }

    #[test]
    fn eventually_respects_position() {
        let h = sample();
        let ev = Evaluator::new(&h);
        let f = Formula::eventually(Formula::crashed(p(0)));
        // From every state, the crash is eventually reached in this prefix.
        assert_eq!(ev.eval(&f), vec![true; 5]);
        let g = Formula::eventually(Formula::failed_by(p(0), p(1)));
        assert_eq!(ev.eval(&g), vec![false; 5]);
    }

    #[test]
    fn boolean_connectives() {
        let h = sample();
        let ev = Evaluator::new(&h);
        assert!(ev.holds(&Formula::True));
        assert!(!ev.holds(&Formula::False));
        assert!(ev.holds(&Formula::not(Formula::crashed(p(1)))));
        assert!(ev.holds(&Formula::Or(vec![Formula::False, Formula::True])));
        assert!(!ev.holds(&Formula::And(vec![Formula::True, Formula::False])));
    }

    #[test]
    fn display_renders_temporal_operators() {
        let f = Formula::always(Formula::implies(
            Formula::failed_by(p(1), p(0)),
            Formula::eventually(Formula::crashed(p(0))),
        ));
        let s = f.to_string();
        assert!(s.contains("□"));
        assert!(s.contains("◇"));
        assert!(s.contains("FAILED_p1(p0)"));
    }

    #[test]
    fn specific_message_atoms() {
        let h = sample();
        let ev = Evaluator::new(&h);
        let m = MsgId::new(p(0), 0);
        let other = MsgId::new(p(0), 9);
        assert!(ev.holds(&Formula::eventually(Formula::Atom(Atom::Received {
            by: p(1),
            from: p(0),
            msg: Some(m)
        }))));
        assert!(
            !ev.holds(&Formula::eventually(Formula::Atom(Atom::Received {
                by: p(1),
                from: p(0),
                msg: Some(other)
            })))
        );
    }
}
