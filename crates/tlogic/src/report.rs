//! Verdicts and reports produced by the property checkers.

use std::fmt;

/// Outcome of checking one property on one run prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds on this prefix (and, for safety properties, on
    /// the whole run).
    Holds,
    /// The property is violated; see the report's violations.
    Violated,
    /// A liveness obligation is still open, but the prefix was truncated
    /// (not quiescent), so the obligation may be met later in the real
    /// run. Not a violation.
    Vacuous,
}

impl Verdict {
    /// Whether this verdict is acceptable for an sFS run (holds or still
    /// open).
    pub fn is_ok(self) -> bool {
        !matches!(self, Verdict::Violated)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Violated => write!(f, "VIOLATED"),
            Verdict::Vacuous => write!(f, "open (truncated prefix)"),
        }
    }
}

/// One concrete violation, with enough detail to debug the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Human-readable description of what went wrong.
    pub detail: String,
    /// Event index in the history where the violation manifests, if it is
    /// localized.
    pub at: Option<usize>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.at {
            Some(at) => write!(f, "[event {at}] {}", self.detail),
            None => write!(f, "{}", self.detail),
        }
    }
}

/// The result of checking one named property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyReport {
    /// Property name, e.g. `"FS2"` or `"sFS2d"`.
    pub property: &'static str,
    /// Overall verdict.
    pub verdict: Verdict,
    /// Concrete violations (empty unless `verdict == Violated`).
    pub violations: Vec<Violation>,
}

impl PropertyReport {
    /// A passing report.
    pub fn holds(property: &'static str) -> Self {
        PropertyReport {
            property,
            verdict: Verdict::Holds,
            violations: Vec::new(),
        }
    }

    /// A vacuous report (liveness obligation open on a truncated prefix).
    pub fn vacuous(property: &'static str) -> Self {
        PropertyReport {
            property,
            verdict: Verdict::Vacuous,
            violations: Vec::new(),
        }
    }

    /// A failing report with its violations.
    pub fn violated(property: &'static str, violations: Vec<Violation>) -> Self {
        debug_assert!(!violations.is_empty());
        PropertyReport {
            property,
            verdict: Verdict::Violated,
            violations,
        }
    }

    /// Whether the property is not violated.
    pub fn is_ok(&self) -> bool {
        self.verdict.is_ok()
    }
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.property, self.verdict)?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_ok_semantics() {
        assert!(Verdict::Holds.is_ok());
        assert!(Verdict::Vacuous.is_ok());
        assert!(!Verdict::Violated.is_ok());
    }

    #[test]
    fn report_display_includes_violations() {
        let r = PropertyReport::violated(
            "FS2",
            vec![Violation {
                detail: "failed_p1(p0) before crash_p0".into(),
                at: Some(3),
            }],
        );
        let s = r.to_string();
        assert!(s.contains("FS2: VIOLATED"));
        assert!(s.contains("[event 3]"));
    }
}
