//! # sfs-tlogic — temporal-logic checking for the fail-stop simulation
//!
//! The property layer of the Sabel & Marzullo (1994) reproduction. Two
//! complementary interfaces:
//!
//! * [`Formula`] / [`Evaluator`] — a general linear-temporal-logic engine
//!   (`□`, `◇` over the paper's stable predicates `SEND`, `RECV`, `CRASH`,
//!   `FAILED`), evaluated with finite-trace semantics over history states;
//! * [`properties`] — direct, efficient checkers for every named property
//!   in the paper (FS1/FS2, sFS2a–d, Conditions 1–3, and the Witness
//!   property W), producing structured [`PropertyReport`]s with concrete
//!   violations.
//!
//! The two are cross-validated in this crate's tests: on the same history,
//! the LTL encoding of a property and its direct checker must agree.
//!
//! # Examples
//!
//! ```
//! use sfs_asys::ProcessId;
//! use sfs_history::{Event, History};
//! use sfs_tlogic::{properties, Verdict};
//!
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! // A false detection, later "made true" by the victim crashing:
//! let h = History::new(2, vec![Event::failed(p1, p0), Event::crash(p0)]);
//! assert_eq!(properties::check_fs2(&h).verdict, Verdict::Violated); // not fail-stop...
//! assert_eq!(properties::check_sfs2a(&h, true).verdict, Verdict::Holds); // ...but sFS-legal
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod formula;
pub mod properties;
mod report;

pub use formula::{Atom, Evaluator, Formula};
pub use report::{PropertyReport, Verdict, Violation};
