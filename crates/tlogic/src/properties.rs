//! Direct checkers for every property named in the paper.
//!
//! | Checker | Paper property |
//! |---------|----------------|
//! | [`check_fs1`] | FS1: `□(CRASH_i ⇒ ∀j: ◇(CRASH_j ∨ FAILED_j(i)))` |
//! | [`check_fs2`] | FS2: `□(FAILED_j(i) ⇒ CRASH_i)` |
//! | [`check_sfs2a`] | sFS2a: `□(FAILED_i(j) ⇒ ◇CRASH_j)` |
//! | [`check_sfs2b`] | sFS2b: failed-before is acyclic |
//! | [`check_sfs2c`] | sFS2c: `□¬FAILED_i(i)` |
//! | [`check_sfs2d`] | sFS2d: detections propagate ahead of messages |
//! | [`check_condition1`] | Condition 1 (≡ sFS2a on runs with FS1) |
//! | [`check_condition2`] | Condition 2 (≡ sFS2b) |
//! | [`check_condition3`] | Condition 3: no event of `j` after `failed_i(j)` in happens-before |
//! | [`check_witness`] | W: all detection quorums share a witness (Thm 6) |
//!
//! Safety properties are decided exactly on any prefix. Liveness
//! properties (FS1, the `◇CRASH` of sFS2a) take a `complete` flag: on a
//! quiescent prefix an unmet obligation is a real violation, on a
//! truncated prefix it is reported [`Verdict::Vacuous`].

use crate::report::{PropertyReport, Verdict, Violation};
use sfs_asys::{Note, ProcessId, Trace, NOTE_QUORUM};
use sfs_history::{Event, FailedBefore, HappensBefore, History};
use std::collections::{BTreeSet, HashMap, HashSet};

/// FS1 — crash completeness: every crashed process is eventually detected
/// by every process that does not itself crash.
///
/// `complete` should be `trace.stop_reason().is_complete()`.
pub fn check_fs1(h: &History, complete: bool) -> PropertyReport {
    let crashed: Vec<ProcessId> = h.crashed();
    let crashed_set: HashSet<ProcessId> = crashed.iter().copied().collect();
    let detected: HashSet<(ProcessId, ProcessId)> = h
        .detections()
        .into_iter()
        .map(|(_, by, of)| (by, of))
        .collect();
    let mut open = Vec::new();
    for &victim in &crashed {
        for j in ProcessId::all(h.n()) {
            if j == victim || crashed_set.contains(&j) {
                continue;
            }
            if !detected.contains(&(j, victim)) {
                open.push(Violation {
                    detail: format!("{j} never detected the crash of {victim}"),
                    at: None,
                });
            }
        }
    }
    if open.is_empty() {
        PropertyReport::holds("FS1")
    } else if complete {
        PropertyReport::violated("FS1", open)
    } else {
        PropertyReport::vacuous("FS1")
    }
}

/// FS2 — strong accuracy: no process is detected before it has crashed.
/// This is the property that is impossible to implement (Theorem 1) and
/// that sFS weakens.
pub fn check_fs2(h: &History) -> PropertyReport {
    let mut crashed: HashSet<ProcessId> = HashSet::new();
    let mut violations = Vec::new();
    for (i, e) in h.events().iter().enumerate() {
        match *e {
            Event::Crash { pid } => {
                crashed.insert(pid);
            }
            Event::Failed { by, of } if !crashed.contains(&of) => {
                violations.push(Violation {
                    detail: format!("failed_{by}({of}) executed before crash_{of}"),
                    at: Some(i),
                });
            }
            _ => {}
        }
    }
    if violations.is_empty() {
        PropertyReport::holds("FS2")
    } else {
        PropertyReport::violated("FS2", violations)
    }
}

/// sFS2a — every detected process eventually crashes (even if the
/// detection was erroneous).
pub fn check_sfs2a(h: &History, complete: bool) -> PropertyReport {
    check_eventual_crash(h, complete, "sFS2a")
}

/// Condition 1 — `◇FAILED_i(j) ⇒ ◇CRASH_j`; necessary for any model
/// indistinguishable from fail-stop (Theorem 2). Extensionally the same
/// check as sFS2a.
pub fn check_condition1(h: &History, complete: bool) -> PropertyReport {
    check_eventual_crash(h, complete, "Condition1")
}

fn check_eventual_crash(h: &History, complete: bool, name: &'static str) -> PropertyReport {
    let crashed: HashSet<ProcessId> = h.crashed().into_iter().collect();
    let mut open = Vec::new();
    for (i, by, of) in h.detections() {
        if !crashed.contains(&of) {
            open.push(Violation {
                detail: format!("failed_{by}({of}) but {of} never crashes"),
                at: Some(i),
            });
        }
    }
    if open.is_empty() {
        PropertyReport::holds(name)
    } else if complete {
        PropertyReport::violated(name, open)
    } else {
        PropertyReport::vacuous(name)
    }
}

/// sFS2b — the failed-before relation is acyclic.
pub fn check_sfs2b(h: &History) -> PropertyReport {
    check_acyclic(h, "sFS2b")
}

/// Condition 2 — identical content to sFS2b, reported under the
/// condition's name.
pub fn check_condition2(h: &History) -> PropertyReport {
    check_acyclic(h, "Condition2")
}

fn check_acyclic(h: &History, name: &'static str) -> PropertyReport {
    match FailedBefore::from_history(h).find_cycle() {
        None => PropertyReport::holds(name),
        Some(cycle) => {
            let pretty: Vec<String> = cycle.iter().map(|p| p.to_string()).collect();
            PropertyReport::violated(
                name,
                vec![Violation {
                    detail: format!("failed-before cycle: {}", pretty.join(" → ")),
                    at: None,
                }],
            )
        }
    }
}

/// sFS2c — a process never detects its own failure.
pub fn check_sfs2c(h: &History) -> PropertyReport {
    let violations: Vec<Violation> = h
        .detections()
        .into_iter()
        .filter(|&(_, by, of)| by == of)
        .map(|(i, by, _)| Violation {
            detail: format!("failed_{by}({by}) executed"),
            at: Some(i),
        })
        .collect();
    if violations.is_empty() {
        PropertyReport::holds("sFS2c")
    } else {
        PropertyReport::violated("sFS2c", violations)
    }
}

/// sFS2d — once `i` has detected `j`, any message `i` subsequently sends
/// is not received by its destination `k` until `k` has also detected `j`.
///
/// Formally: `□[FAILED_i(j) ∧ ¬SEND_i(k,m) ⇒ □((SEND_i(k,m) ∧
/// RECV_k(i,m)) ⇒ FAILED_k(j))]`.
pub fn check_sfs2d(h: &History) -> PropertyReport {
    // Position of every receive, keyed by message.
    let mut recv_pos: HashMap<sfs_asys::MsgId, (usize, ProcessId)> = HashMap::new();
    // State index at which failed_k(j) becomes true.
    let mut failed_at: HashMap<(ProcessId, ProcessId), usize> = HashMap::new();
    for (i, e) in h.events().iter().enumerate() {
        match *e {
            Event::Recv { by, msg, .. } => {
                recv_pos.insert(msg, (i, by));
            }
            Event::Failed { by, of } => {
                failed_at.entry((by, of)).or_insert(i);
            }
            _ => {}
        }
    }
    let mut violations = Vec::new();
    // Detections already made by each process, rebuilt in scan order.
    let mut detected_by: HashMap<ProcessId, Vec<ProcessId>> = HashMap::new();
    for e in h.events() {
        match *e {
            Event::Failed { by, of } => detected_by.entry(by).or_default().push(of),
            Event::Send { from, to, msg } => {
                let Some(suspects) = detected_by.get(&from) else {
                    continue;
                };
                if suspects.is_empty() {
                    continue;
                }
                let Some(&(rpos, receiver)) = recv_pos.get(&msg) else {
                    continue; // never received: no obligation fires
                };
                debug_assert_eq!(receiver, to);
                for &j in suspects {
                    let ok = failed_at.get(&(to, j)).is_some_and(|&f| f < rpos);
                    if !ok {
                        violations.push(Violation {
                            detail: format!(
                                "{to} received {msg} from {from} (which had detected {j}) \
                                 before executing failed_{to}({j})"
                            ),
                            at: Some(rpos),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    if violations.is_empty() {
        PropertyReport::holds("sFS2d")
    } else {
        PropertyReport::violated("sFS2d", violations)
    }
}

/// Condition 3 — there is no event `e` of process `j` with
/// `failed_i(j) → e` in happens-before. Necessary for indistinguishability
/// (Theorem 2); implied by sFS2c ∧ sFS2d (Lemma 4).
pub fn check_condition3(h: &History) -> PropertyReport {
    let hb = HappensBefore::compute(h);
    let mut violations = Vec::new();
    for (f_idx, by, of) in h.detections() {
        for (e_idx, e) in h.events().iter().enumerate() {
            if e.process() == of && hb.leq(f_idx, e_idx) {
                violations.push(Violation {
                    detail: format!("event `{e}` of {of} is causally after failed_{by}({of})"),
                    at: Some(e_idx),
                });
            }
        }
    }
    if violations.is_empty() {
        PropertyReport::holds("Condition3")
    } else {
        PropertyReport::violated("Condition3", violations)
    }
}

/// W, the Witness property as Theorem 7 needs it: **every `t` quorum
/// sets** among the run's failure detections have a common member.
///
/// The paper displays W as "one witness in all quorums", but its proof of
/// Theorem 7 uses exactly the `t`-wise form: "the largest possible cycle
/// in a run satisfying (simulated) fail-stop involves `t` processes. We
/// must guarantee that any `t` quorum sets `Q_1 … Q_t` have a nonempty
/// intersection." A long run accumulates many detections whose quorums
/// need not all share one process; cycles only ever need `t` of them.
///
/// Quorums are read from the trace's [`NOTE_QUORUM`] annotations, which
/// the sFS protocol records at each detection; a detection without an
/// annotation (e.g. from a unilateral detector) is treated as having
/// quorum `{detector}`.
pub fn check_witness(trace: &Trace, t: usize) -> PropertyReport {
    let mut quorums: Vec<(ProcessId, Option<ProcessId>, BTreeSet<ProcessId>)> = Vec::new();
    for (_, pid, note) in trace.notes_with_key(NOTE_QUORUM) {
        if let Note::ProcessSet { about, set, .. } = note {
            quorums.push((pid, *about, set.iter().copied().collect()));
        }
    }
    let annotated: HashSet<(ProcessId, Option<ProcessId>)> = quorums
        .iter()
        .map(|(pid, about, _)| (*pid, *about))
        .collect();
    // Detections without a quorum annotation count as unilateral: {self}.
    for (by, of) in trace.detections() {
        if !annotated.contains(&(by, Some(of))) {
            quorums.push((by, Some(of), std::iter::once(by).collect()));
        }
    }
    let k = t.max(2).min(quorums.len());
    if quorums.len() < 2 {
        return PropertyReport::holds("W");
    }
    // Sufficient condition without enumeration: if every quorum misses at
    // most (n/k - something)... — concretely, k sets each of size ≥ q over
    // universe n intersect whenever k·(n − q) < n.
    let n = trace.n();
    let min_q = quorums.iter().map(|(_, _, q)| q.len()).min().unwrap_or(0);
    if k * (n - min_q.min(n)) < n {
        return PropertyReport::holds("W");
    }
    // Otherwise enumerate k-subsets (experiment sizes keep this small).
    let sets: Vec<&BTreeSet<ProcessId>> = quorums.iter().map(|(_, _, q)| q).collect();
    let mut indices: Vec<usize> = (0..k).collect();
    loop {
        let mut intersection = sets[indices[0]].clone();
        for &i in &indices[1..] {
            intersection = intersection.intersection(sets[i]).copied().collect();
            if intersection.is_empty() {
                break;
            }
        }
        if intersection.is_empty() {
            return PropertyReport::violated(
                "W",
                vec![Violation {
                    detail: format!(
                        "{k} of the {} detection quorums have empty intersection \
                         (quorum indices {indices:?})",
                        sets.len()
                    ),
                    at: None,
                }],
            );
        }
        // Next k-combination.
        let mut i = k;
        loop {
            if i == 0 {
                return PropertyReport::holds("W");
            }
            i -= 1;
            if indices[i] != i + sets.len() - k {
                indices[i] += 1;
                for j in i + 1..k {
                    indices[j] = indices[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Checks all simulated-fail-stop properties (FS1, sFS2a–d) plus the
/// necessary Conditions 1–3 on one history.
///
/// `complete` should be `trace.stop_reason().is_complete()` for histories
/// projected from traces.
pub fn check_sfs_suite(h: &History, complete: bool) -> Vec<PropertyReport> {
    vec![
        check_fs1(h, complete),
        check_sfs2a(h, complete),
        check_sfs2b(h),
        check_sfs2c(h),
        check_sfs2d(h),
        check_condition1(h, complete),
        check_condition2(h),
        check_condition3(h),
    ]
}

/// Convenience: whether every report in a suite is non-violated.
pub fn suite_ok(reports: &[PropertyReport]) -> bool {
    reports.iter().all(PropertyReport::is_ok)
}

/// Convenience: the verdict for a named property within a suite.
pub fn verdict_of(reports: &[PropertyReport], property: &str) -> Option<Verdict> {
    reports
        .iter()
        .find(|r| r.property == property)
        .map(|r| r.verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_asys::MsgId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn m(src: usize, seq: u64) -> MsgId {
        MsgId::new(p(src), seq)
    }

    #[test]
    fn fs1_holds_when_all_survivors_detect() {
        let h = History::new(
            3,
            vec![
                Event::crash(p(0)),
                Event::failed(p(1), p(0)),
                Event::failed(p(2), p(0)),
            ],
        );
        assert_eq!(check_fs1(&h, true).verdict, Verdict::Holds);
    }

    #[test]
    fn fs1_violated_on_complete_run_with_missing_detection() {
        let h = History::new(3, vec![Event::crash(p(0)), Event::failed(p(1), p(0))]);
        assert_eq!(check_fs1(&h, true).verdict, Verdict::Violated);
        assert_eq!(check_fs1(&h, false).verdict, Verdict::Vacuous);
    }

    #[test]
    fn fs1_excuses_crashed_detectors() {
        // p2 crashed; it need not detect p0 (but survivor p1 must detect
        // both crashed processes).
        let h = History::new(
            3,
            vec![
                Event::crash(p(0)),
                Event::crash(p(2)),
                Event::failed(p(1), p(0)),
                Event::failed(p(1), p(2)),
            ],
        );
        assert_eq!(check_fs1(&h, true).verdict, Verdict::Holds);
    }

    #[test]
    fn fs2_exact_on_any_prefix() {
        let good = History::new(2, vec![Event::crash(p(0)), Event::failed(p(1), p(0))]);
        assert_eq!(check_fs2(&good).verdict, Verdict::Holds);
        let bad = History::new(2, vec![Event::failed(p(1), p(0)), Event::crash(p(0))]);
        let report = check_fs2(&bad);
        assert_eq!(report.verdict, Verdict::Violated);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].at, Some(0));
    }

    #[test]
    fn sfs2a_accepts_late_crash_and_rejects_missing_one() {
        let late = History::new(2, vec![Event::failed(p(1), p(0)), Event::crash(p(0))]);
        assert_eq!(check_sfs2a(&late, true).verdict, Verdict::Holds);
        let missing = History::new(2, vec![Event::failed(p(1), p(0))]);
        assert_eq!(check_sfs2a(&missing, true).verdict, Verdict::Violated);
        assert_eq!(check_sfs2a(&missing, false).verdict, Verdict::Vacuous);
    }

    #[test]
    fn sfs2b_detects_cycles() {
        let h = History::new(
            2,
            vec![
                Event::failed(p(0), p(1)),
                Event::failed(p(1), p(0)),
                Event::crash(p(0)),
                Event::crash(p(1)),
            ],
        );
        let report = check_sfs2b(&h);
        assert_eq!(report.verdict, Verdict::Violated);
        assert!(report.violations[0].detail.contains("cycle"));
    }

    #[test]
    fn sfs2c_rejects_self_detection() {
        let h = History::new(2, vec![Event::failed(p(0), p(0))]);
        assert_eq!(check_sfs2c(&h).verdict, Verdict::Violated);
        let ok = History::new(2, vec![Event::failed(p(0), p(1)), Event::crash(p(1))]);
        assert_eq!(check_sfs2c(&ok).verdict, Verdict::Holds);
    }

    #[test]
    fn sfs2d_violated_when_message_outruns_detection() {
        // p0 detects p2, then sends m to p1; p1 receives it without having
        // detected p2.
        let h = History::new(
            3,
            vec![
                Event::failed(p(0), p(2)),
                Event::send(p(0), p(1), m(0, 0)),
                Event::recv(p(1), p(0), m(0, 0)),
                Event::crash(p(2)),
            ],
        );
        let report = check_sfs2d(&h);
        assert_eq!(report.verdict, Verdict::Violated);
        assert_eq!(report.violations[0].at, Some(2));
    }

    #[test]
    fn sfs2d_holds_when_detection_precedes_receipt() {
        let h = History::new(
            3,
            vec![
                Event::failed(p(0), p(2)),
                Event::send(p(0), p(1), m(0, 0)),
                Event::failed(p(1), p(2)),
                Event::recv(p(1), p(0), m(0, 0)),
                Event::crash(p(2)),
            ],
        );
        assert_eq!(check_sfs2d(&h).verdict, Verdict::Holds);
    }

    #[test]
    fn sfs2d_no_obligation_for_messages_sent_before_detection() {
        let h = History::new(
            3,
            vec![
                Event::send(p(0), p(1), m(0, 0)),
                Event::failed(p(0), p(2)),
                Event::recv(p(1), p(0), m(0, 0)),
                Event::crash(p(2)),
            ],
        );
        assert_eq!(check_sfs2d(&h).verdict, Verdict::Holds);
    }

    #[test]
    fn condition3_catches_victim_activity_after_detection_chain() {
        // p0 detects p2, sends to p2; p2 receives (an event of p2 causally
        // after failed_p0(p2)).
        let h = History::new(
            3,
            vec![
                Event::failed(p(0), p(2)),
                Event::send(p(0), p(2), m(0, 0)),
                Event::recv(p(2), p(0), m(0, 0)),
                Event::crash(p(2)),
            ],
        );
        let report = check_condition3(&h);
        assert_eq!(report.verdict, Verdict::Violated);
    }

    #[test]
    fn condition3_holds_on_theorem3_run() {
        let run = sfs_history::scenarios::theorem3_run();
        assert_eq!(check_condition3(&run).verdict, Verdict::Holds);
        assert_eq!(check_condition1(&run, true).verdict, Verdict::Holds);
        assert_eq!(check_condition2(&run).verdict, Verdict::Holds);
        // ...and yet FS2 fails and no rearrangement exists (Theorem 3).
        assert_eq!(check_fs2(&run).verdict, Verdict::Violated);
    }

    fn trace_with_quorums(quorums: Vec<(usize, usize, Vec<usize>)>) -> Trace {
        use sfs_asys::{SimStats, StopReason, TraceEvent, TraceEventKind, VirtualTime};
        let mut events = Vec::new();
        for (i, (by, of, q)) in quorums.into_iter().enumerate() {
            let set: Vec<ProcessId> = q.into_iter().map(ProcessId::new).collect();
            events.push(TraceEvent {
                seq: events.len(),
                time: VirtualTime::from_ticks(i as u64),
                kind: TraceEventKind::Note {
                    pid: p(by),
                    note: Note::process_set(NOTE_QUORUM, Some(p(of)), set),
                },
            });
            events.push(TraceEvent {
                seq: events.len(),
                time: VirtualTime::from_ticks(i as u64),
                kind: TraceEventKind::Failed {
                    by: p(by),
                    of: p(of),
                },
            });
        }
        Trace::from_parts(
            6,
            events,
            StopReason::Quiescent,
            VirtualTime::from_ticks(10),
            SimStats::default(),
        )
    }

    #[test]
    fn witness_holds_with_common_member() {
        let trace = trace_with_quorums(vec![
            (0, 1, vec![0, 2, 3]),
            (4, 5, vec![2, 3, 4]),
            (2, 0, vec![1, 2, 4]),
        ]);
        assert_eq!(check_witness(&trace, 3).verdict, Verdict::Holds);
    }

    #[test]
    fn witness_violated_with_empty_intersection() {
        let trace = trace_with_quorums(vec![(0, 1, vec![0, 2]), (3, 4, vec![3, 5])]);
        assert_eq!(check_witness(&trace, 2).verdict, Verdict::Violated);
    }

    #[test]
    fn witness_trivial_with_single_detection() {
        let trace = trace_with_quorums(vec![(0, 1, vec![0])]);
        assert_eq!(check_witness(&trace, 2).verdict, Verdict::Holds);
    }

    #[test]
    fn witness_is_t_wise_not_global() {
        // Three quorums with empty GLOBAL intersection but every PAIR
        // intersecting: fine for t = 2, violated for t = 3.
        let trace = trace_with_quorums(vec![
            (0, 1, vec![0, 2]),
            (3, 4, vec![2, 5]),
            (2, 0, vec![0, 5]),
        ]);
        assert_eq!(check_witness(&trace, 2).verdict, Verdict::Holds);
        assert_eq!(check_witness(&trace, 3).verdict, Verdict::Violated);
    }

    #[test]
    fn witness_treats_unannotated_detections_as_unilateral() {
        use sfs_asys::{SimStats, StopReason, TraceEvent, TraceEventKind, VirtualTime};
        // Two unannotated detections by different processes: quorums {p0}
        // and {p1}, empty intersection.
        let events = vec![
            TraceEvent {
                seq: 0,
                time: VirtualTime::ZERO,
                kind: TraceEventKind::Failed { by: p(0), of: p(2) },
            },
            TraceEvent {
                seq: 1,
                time: VirtualTime::ZERO,
                kind: TraceEventKind::Failed { by: p(1), of: p(3) },
            },
        ];
        let trace = Trace::from_parts(
            4,
            events,
            StopReason::Quiescent,
            VirtualTime::ZERO,
            SimStats::default(),
        );
        assert_eq!(check_witness(&trace, 2).verdict, Verdict::Violated);
    }

    #[test]
    fn suite_runs_all_checks() {
        let h = History::new(
            3,
            vec![
                Event::crash(p(0)),
                Event::failed(p(1), p(0)),
                Event::failed(p(2), p(0)),
            ],
        );
        let reports = check_sfs_suite(&h, true);
        assert_eq!(reports.len(), 8);
        assert!(suite_ok(&reports));
        assert_eq!(verdict_of(&reports, "sFS2b"), Some(Verdict::Holds));
        assert_eq!(verdict_of(&reports, "nonexistent"), None);
    }
}
