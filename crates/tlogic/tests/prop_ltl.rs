//! Property-based tests for the LTL engine: classical semantic laws over
//! random formulas and random histories, plus equivalence with a naive
//! reference evaluator.

use proptest::prelude::*;
use sfs_asys::{MsgId, ProcessId};
use sfs_history::{Event, History};
use sfs_tlogic::{Atom, Evaluator, Formula};

const N: usize = 3;

fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0..N).prop_map(|i| Atom::Crashed(ProcessId::new(i))),
        (0..N, 0..N).prop_map(|(i, j)| Atom::FailedBy {
            by: ProcessId::new(i),
            of: ProcessId::new(j)
        }),
        (0..N, 0..N).prop_map(|(i, j)| Atom::Sent {
            from: ProcessId::new(i),
            to: ProcessId::new(j),
            msg: None
        }),
        (0..N, 0..N).prop_map(|(i, j)| Atom::Received {
            by: ProcessId::new(j),
            from: ProcessId::new(i),
            msg: None
        }),
    ]
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        arb_atom().prop_map(Formula::Atom),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::Or),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            inner.clone().prop_map(Formula::always),
            inner.prop_map(Formula::eventually),
        ]
    })
}

/// A small random valid history: sends matched with in-order receives,
/// detections, crashes.
fn arb_history() -> impl Strategy<Value = History> {
    prop::collection::vec((0..N, 0..N, 0u8..5), 0..12).prop_map(|ops| {
        let mut events = Vec::new();
        let mut crashed = [false; N];
        let mut failed = [[false; N]; N];
        let mut seq = [0u64; N];
        let mut in_flight: Vec<Vec<Vec<MsgId>>> = vec![vec![Vec::new(); N]; N];
        for (a, b, op) in ops {
            if crashed[a] {
                continue;
            }
            let pa = ProcessId::new(a);
            let pb = ProcessId::new(b);
            match op {
                0 | 1 => {
                    let m = MsgId::new(pa, seq[a]);
                    seq[a] += 1;
                    in_flight[a][b].push(m);
                    events.push(Event::send(pa, pb, m));
                }
                2 => {
                    if !in_flight[b][a].is_empty() {
                        let m = in_flight[b][a].remove(0);
                        events.push(Event::recv(pa, pb, m));
                    }
                }
                3 => {
                    if a != b && !failed[a][b] {
                        failed[a][b] = true;
                        events.push(Event::failed(pa, pb));
                    }
                }
                _ => {
                    crashed[a] = true;
                    events.push(Event::crash(pa));
                }
            }
        }
        History::new(N, events)
    })
}

/// Naive reference evaluator: direct recursion, no memoization.
fn naive_eval(ev: &Evaluator, f: &Formula, k: usize) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom(_) => ev.eval(f)[k], // atoms delegate (indexing identical)
        Formula::Not(x) => !naive_eval(ev, x, k),
        Formula::And(xs) => xs.iter().all(|x| naive_eval(ev, x, k)),
        Formula::Or(xs) => xs.iter().any(|x| naive_eval(ev, x, k)),
        Formula::Implies(a, b) => !naive_eval(ev, a, k) || naive_eval(ev, b, k),
        Formula::Always(x) => (k..ev.states()).all(|j| naive_eval(ev, x, j)),
        Formula::Eventually(x) => (k..ev.states()).any(|j| naive_eval(ev, x, j)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The vectorized evaluator agrees with direct recursion at every
    /// state.
    #[test]
    fn evaluator_matches_naive_reference(h in arb_history(), f in arb_formula()) {
        let ev = Evaluator::new(&h);
        let fast = ev.eval(&f);
        for (k, &fast_k) in fast.iter().enumerate() {
            prop_assert_eq!(fast_k, naive_eval(&ev, &f, k), "state {}: {}", k, f);
        }
    }

    /// Duality: ¬◇P ≡ □¬P and ¬□P ≡ ◇¬P.
    #[test]
    fn temporal_duality(h in arb_history(), f in arb_formula()) {
        let ev = Evaluator::new(&h);
        let not_eventually = ev.eval(&Formula::not(Formula::eventually(f.clone())));
        let always_not = ev.eval(&Formula::always(Formula::not(f.clone())));
        prop_assert_eq!(not_eventually, always_not);
        let not_always = ev.eval(&Formula::not(Formula::always(f.clone())));
        let eventually_not = ev.eval(&Formula::eventually(Formula::not(f)));
        prop_assert_eq!(not_always, eventually_not);
    }

    /// Idempotence: □□P ≡ □P and ◇◇P ≡ ◇P.
    #[test]
    fn temporal_idempotence(h in arb_history(), f in arb_formula()) {
        let ev = Evaluator::new(&h);
        prop_assert_eq!(
            ev.eval(&Formula::always(Formula::always(f.clone()))),
            ev.eval(&Formula::always(f.clone()))
        );
        prop_assert_eq!(
            ev.eval(&Formula::eventually(Formula::eventually(f.clone()))),
            ev.eval(&Formula::eventually(f))
        );
    }

    /// Distribution: □(P ∧ Q) ≡ □P ∧ □Q and ◇(P ∨ Q) ≡ ◇P ∨ ◇Q.
    #[test]
    fn temporal_distribution(h in arb_history(), p in arb_formula(), q in arb_formula()) {
        let ev = Evaluator::new(&h);
        prop_assert_eq!(
            ev.eval(&Formula::always(Formula::And(vec![p.clone(), q.clone()]))),
            ev.eval(&Formula::And(vec![
                Formula::always(p.clone()),
                Formula::always(q.clone())
            ]))
        );
        prop_assert_eq!(
            ev.eval(&Formula::eventually(Formula::Or(vec![p.clone(), q.clone()]))),
            ev.eval(&Formula::Or(vec![
                Formula::eventually(p),
                Formula::eventually(q)
            ]))
        );
    }

    /// Stability of atoms: once true, an atom stays true — so ◇P at state
    /// k implies □P from the first state where P holds.
    #[test]
    fn atoms_are_stable(h in arb_history(), a in arb_atom()) {
        let ev = Evaluator::new(&h);
        let v = ev.eval(&Formula::Atom(a));
        let mut seen = false;
        for &b in &v {
            if seen {
                prop_assert!(b, "stable atom became false");
            }
            seen |= b;
        }
        // For stable atoms: ◇P ∧ "P somewhere" ⇒ □◇P trivially; check the
        // stronger: eventually(P) at k equals P at last state reachable.
        let ev_eventually = ev.eval(&Formula::eventually(Formula::Atom(a)));
        let last = *v.last().expect("at least one state");
        for k in 0..ev.states() {
            prop_assert_eq!(
                ev_eventually[k],
                last || v[k..].iter().any(|&x| x),
                "eventually mismatch at {}",
                k
            );
        }
    }

    /// Monotonicity in the prefix: □P implies P, and P implies ◇P.
    #[test]
    fn always_implies_now_implies_eventually(h in arb_history(), f in arb_formula()) {
        let ev = Evaluator::new(&h);
        let now = ev.eval(&f);
        let always = ev.eval(&Formula::always(f.clone()));
        let eventually = ev.eval(&Formula::eventually(f));
        for k in 0..ev.states() {
            prop_assert!(!always[k] || now[k]);
            prop_assert!(!now[k] || eventually[k]);
        }
    }
}
