//! Strategies: declarative descriptions of how to generate test inputs.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A value generator. Object-safe; all combinators require `Self: Sized`
/// so trait objects still work (see [`BoxedStrategy`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a branch case. `depth` bounds the
    /// nesting; the size hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice among same-valued strategies; the engine behind
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

/// Integer types generatable from ranges and [`any`].
pub trait ArbitraryInt: Copy {
    /// Uniform draw from `[lo, hi]` inclusive.
    fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform draw over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryInt for $t {
            fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }

            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ArbitraryInt + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        // end - 1 without a Sub bound: resample until below end. The
        // multiply-shift draw over [start, end) is emulated by sampling the
        // inclusive range and rejecting the (rare) top value.
        loop {
            let v = T::uniform(rng, self.start, clamp_pred(self.end));
            if v < self.end {
                return v;
            }
        }
    }
}

/// Helper: identity — `uniform` handles the inclusive bound; the loop above
/// rejects values equal to `end` when the numeric predecessor is not
/// representable generically.
fn clamp_pred<T>(end: T) -> T {
    end
}

impl<T: ArbitraryInt + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = self.clone().into_inner();
        assert!(lo <= hi, "empty range strategy");
        T::uniform(rng, lo, hi)
    }
}

/// Strategy for any value of `T`; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates an arbitrary value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a whole-domain generator.
pub trait ArbitraryValue {
    /// Draws one value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_value_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                <$t as ArbitraryInt>::arbitrary(rng)
            }
        }
    )*};
}
impl_arbitrary_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, min: usize, max: usize) -> Self {
        VecStrategy { element, min, max }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = usize::uniform(rng, self.min, self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Uniform choice among strategies of one value type.
///
/// Unlike the real proptest, arms are unweighted (no usage in this
/// workspace weights them).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..5000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2u8..=4).generate(&mut rng);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic(2);
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n));
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let doubled = (0u32..8).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            // The payload exists to exercise `prop_map(Tree::Leaf)`.
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::deterministic(3);
        for _ in 0..200 {
            // depth budget 3 plus the Node layer per level
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let u = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = TestRng::deterministic(4);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
