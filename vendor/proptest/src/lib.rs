//! Offline stand-in for the `proptest` API surface this workspace uses.
//!
//! Implements strategy-based *generation* with the same combinator names as
//! the real crate (`prop_map`, `prop_flat_map`, `prop_recursive`, tuples,
//! ranges, `any`, `prop::collection::vec`, `prop_oneof!`, `Just`) and the
//! `proptest! { ... }` test macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from the real proptest, accepted for an offline build:
//!
//! * **No shrinking** — a failing case reports the case number and the
//!   assertion message; re-running is deterministic, so the case is
//!   reproducible by construction.
//! * Case inputs derive from a fixed per-case seed (SplitMix64), not an OS
//!   entropy source; `PROPTEST_CASES` still overrides the case count.

pub mod strategy;
pub mod test_runner;

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Size specification for [`vec()`](fn@vec): an exact length or a range.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "empty vec size range");
            (lo, hi)
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy::new(element, min, max)
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;
}

/// Everything a `proptest!` test module needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}
