//! The case runner behind the `proptest!` macro.

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn deterministic(seed: u64) -> Self {
        // Pre-mix so consecutive case numbers give unrelated streams.
        let mut rng = TestRng {
            state: seed ^ 0x6a09_e667_f3bc_c909,
        };
        rng.next_u64();
        rng
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass. The
    /// `PROPTEST_CASES` environment variable overrides this at runtime.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to run, after the environment override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)
     $(
         $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            // `$meta` captures every attribute, including the `#[test]`
            // the caller writes per proptest convention.
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let cases = config.effective_cases();
                let mut passed: u32 = 0;
                let mut rejected: u64 = 0;
                let mut case: u64 = 0;
                while passed < cases {
                    case += 1;
                    let mut rng = $crate::test_runner::TestRng::deterministic(case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > 4096 + (cases as u64) * 64 {
                                panic!(
                                    "proptest '{}': too many rejected cases \
                                     ({rejected}), last: {why}",
                                    stringify!($name),
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at deterministic case #{case} \
                                 (after {passed} passes): {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case if the operands are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a, b
        );
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`, both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)+), a
        );
    }};
}

/// Discards the current case (retried with fresh inputs) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and generation both work.
        #[test]
        fn generated_values_respect_strategies(
            x in 0u32..10,
            v in prop::collection::vec(0usize..5, 1..4),
            b in prop::bool::ANY,
        ) {
            prop_assert!(x < 10);
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
            let _ = b;
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1, "parity of {}", x);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic(9);
        let mut b = crate::test_runner::TestRng::deterministic(9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // No `#[test]` on the inner fn: the macro treats attributes as
    // pass-through, so omitting it yields a plain callable we can assert
    // panics (a nested `#[test]` would be uncollectable anyway).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn always_fails(x in 0u8..4) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at deterministic case")]
    fn failures_panic_with_case_number() {
        always_fails();
    }
}
