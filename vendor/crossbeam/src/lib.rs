//! Offline stand-in for the `crossbeam::channel` API surface this
//! workspace uses: unbounded MPSC channels with `recv_timeout`. Backed by
//! `std::sync::mpsc`, which provides the same FIFO-per-sender guarantee the
//! threaded runtime relies on.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::time::Duration;

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>, Arc<AtomicUsize>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone(), self.1.clone())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>, Arc<AtomicUsize>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (Sender(tx, depth.clone()), Receiver(rx, depth))
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only if every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let sent = self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m));
            if sent.is_ok() {
                self.1.fetch_add(1, Ordering::Relaxed);
            }
            sent
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let got = self.0.recv().map_err(|_| RecvError);
            if got.is_ok() {
                self.1.fetch_sub(1, Ordering::Relaxed);
            }
            got
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let got = self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            });
            if got.is_ok() {
                self.1.fetch_sub(1, Ordering::Relaxed);
            }
            got
        }

        /// Returns a buffered message immediately, or reports an empty or
        /// disconnected channel without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let got = self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            });
            if got.is_ok() {
                self.1.fetch_sub(1, Ordering::Relaxed);
            }
            got
        }

        /// The number of messages currently buffered, mirroring
        /// `crossbeam::channel::Receiver::len`. Approximate under
        /// concurrent sends — good for queue-depth telemetry, not for
        /// synchronization.
        pub fn len(&self) -> usize {
            self.1.load(Ordering::Relaxed)
        }

        /// Whether the buffer is currently empty (see [`Receiver::len`]).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn clone_senders_from_threads() {
        let (tx, rx) = channel::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(k).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
