//! Offline stand-in for the `criterion` API surface this workspace uses:
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! Measurement model: a short calibration pass sizes an iteration batch so
//! one sample takes roughly `measurement_time / sample_size`, then
//! `sample_size` timed samples are collected. The mean, median, and
//! minimum per-iteration times are printed and appended as one JSON line
//! to `target/criterion-lite/results.jsonl` (override the directory with
//! `CRITERION_LITE_DIR`), giving the workspace a machine-readable perf
//! trajectory without the real criterion's dependency tree.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 60,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
        }
    }
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the time budget for one benchmark's timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Runs a benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group. (Reports are emitted per benchmark.)
    pub fn finish(self) {}
}

/// Timing statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    iters: u64,
    samples: usize,
}

/// The measurement loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    stats: Option<Stats>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            stats: None,
        }
    }

    /// Measures `routine`, retaining its output so the optimizer cannot
    /// delete the work (pair with `std::hint::black_box` in the routine).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find a batch size that takes >= ~1/sample of the
        // measurement budget, growing geometrically from 1.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let mut batch: u64 = 1;
        let mut calibration_time;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            calibration_time = t0.elapsed().as_secs_f64();
            if calibration_time >= per_sample.min(0.05) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let iters =
            ((per_sample / (calibration_time / batch as f64).max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median_ns = samples_ns[samples_ns.len() / 2];
        let min_ns = samples_ns[0];
        self.stats = Some(Stats {
            mean_ns,
            median_ns,
            min_ns,
            iters,
            samples: samples_ns.len(),
        });
    }

    fn report(&self, group: &str, id: &str) {
        let Some(s) = self.stats else {
            println!("{group}/{id}: no measurement (Bencher::iter never called)");
            return;
        };
        println!(
            "{group}/{id}: mean {} median {} min {} ({} samples x {} iters)",
            fmt_ns(s.mean_ns),
            fmt_ns(s.median_ns),
            fmt_ns(s.min_ns),
            s.samples,
            s.iters
        );
        let dir = std::env::var("CRITERION_LITE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/criterion-lite"));
        if std::fs::create_dir_all(&dir).is_ok() {
            if let Ok(mut file) = OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("results.jsonl"))
            {
                let _ = writeln!(
                    file,
                    "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\
                     \"min_ns\":{:.1},\"samples\":{},\"iters\":{}}}",
                    group.escape_default(),
                    id.escape_default(),
                    s.mean_ns,
                    s.median_ns,
                    s.min_ns,
                    s.samples,
                    s.iters
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Defines a benchmark group entry point, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        std::env::set_var(
            "CRITERION_LITE_DIR",
            std::env::temp_dir().join("crit-lite-test"),
        );
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        group.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
