//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace serializes values yet — the `Serialize` /
//! `Deserialize` derives exist so that types are *declared* serializable
//! ahead of a future wire format. Until the real serde is vendored or
//! fetched, the derives expand to nothing, which is exactly enough for
//! every current use (no code in the tree requires the trait bounds).

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
