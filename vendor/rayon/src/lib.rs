//! Offline stand-in for the `rayon` API surface this workspace uses:
//! `into_par_iter()` / `par_iter()` plus `map` and `collect`.
//!
//! Execution model: items are pulled from a shared work queue by
//! `available_parallelism()` scoped threads and results are written back
//! into their original slots, so **output order always equals input
//! order** regardless of scheduling — the property the experiment suite
//! relies on for byte-identical tables. Work-stealing granularity is one
//! item, which is the right shape for this workspace's coarse tasks (each
//! item is a whole simulated run).

use std::sync::Mutex;

/// Executes `f` over `items` on a scoped thread pool, preserving order.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work = Mutex::new(items.into_iter().enumerate());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = work.lock().unwrap_or_else(|e| e.into_inner()).next();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every slot filled by the pool")
        })
        .collect()
}

/// A parallel iterator: a computation that yields its items in input
/// order when driven.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Runs the computation, returning items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the items, in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Sums the items, in input order.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }
}

/// Leaf parallel iterator over materialized items.
#[derive(Debug)]
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// A parallel `map` stage; the parallelism happens here.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map(self.base.drive(), &self.f)
    }
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

macro_rules! impl_range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = IntoParIter<$t>;

            fn into_par_iter(self) -> IntoParIter<$t> {
                IntoParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_into_par_iter!(u8, u16, u32, u64, usize, i32, i64);

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = IntoParIter<&'a T>;

    fn par_iter(&'a self) -> IntoParIter<&'a T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

/// One-import convenience, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        let expect: Vec<u64> = (0u64..1000).map(|x| x * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4];
        let out: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn sum_matches_serial() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 4950);
    }

    #[test]
    fn empty_and_single_item_work() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9u8].into_par_iter().map(|x| x).collect();
        assert_eq!(one, vec![9]);
    }
}
