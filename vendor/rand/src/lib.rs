//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, `RngCore`, and
//! `Rng::{gen, gen_range, gen_bool}` over integer ranges. The generator is
//! SplitMix64 — fast, well-distributed, and deterministic per seed, which
//! is all the simulator requires (runs are reproducible by `(config,
//! seed)`, not by any particular stream). The random *streams* differ from
//! the real `rand::rngs::StdRng` (ChaCha12), so swapping the real crate in
//! later will reseed every experiment — accepted and documented.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random via [`Rng::gen`], standing in for
/// sampling from rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                // Multiply-shift over a u128 span: unbiased enough for
                // simulation workloads and free of overflow at the extremes.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument to [`Rng::gen_range`], mirroring `rand::distributions`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_inclusive(rng, self.start, T::dec(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Decrement support so half-open ranges can reuse the inclusive sampler.
pub trait One {
    /// `v - 1`.
    fn dec(v: Self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(impl One for $t { fn dec(v: Self) -> Self { v - 1 } })*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a value of `T` uniformly at random.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let z: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u32 = rng.gen_range(5..5);
    }
}
