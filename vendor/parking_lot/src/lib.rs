//! Offline stand-in for the `parking_lot` API surface this workspace uses:
//! a `Mutex` whose `lock()` never returns a poison error. Backed by
//! `std::sync::Mutex`; poisoning is swallowed, matching parking_lot's
//! semantics of not having it.

use std::fmt;
use std::sync::PoisonError;

/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock without poisoning, mirroring
/// `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons: if a
    /// holder panicked, the next lock proceeds with the value as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
