//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data model so the
//! types are declared serializable, but no code path actually serializes
//! anything yet (experiment output is hand-rolled JSON). This crate provides
//! the trait *names* and derives that expand to nothing, keeping the source
//! identical to what it will be once the real serde is available to the
//! build environment.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
