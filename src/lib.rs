//! # failstop — simulating fail-stop in asynchronous distributed systems
//!
//! A full reproduction of Laura Sabel and Keith Marzullo, *Simulating
//! Fail-Stop in Asynchronous Distributed Systems* (Cornell TR 94-1413,
//! PODC 1994 line of work), as a Rust workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`asys`] | asynchronous-system substrate: deterministic simulator, FIFO channels, latency adversaries, threaded runtime |
//! | [`history`] | formal event histories, happens-before, failed-before, the Theorem 5 rearrangement engine |
//! | [`tlogic`] | temporal-logic checker and the FS / sFS property suite |
//! | [`explore`] | schedule-space exploration: bounded-exhaustive DFS with partial-order pruning, random-walk fallback, replayable witnesses |
//! | [`core`] (as [`sfs`]) | the one-round simulated-fail-stop protocol, quorum bounds, comparator detectors |
//! | [`apps`] | leader election, last-to-fail recovery, membership, the Appendix A.3 adversary, exploration scenarios |
//! | [`service`] | scale-out layer: shard planner, replicated cross-shard directory, load generation, the E11 engine |
//!
//! This facade re-exports each crate under a short name; depend on it for
//! everything, or on the individual crates for narrower builds.
//!
//! # Examples
//!
//! ```
//! use failstop::prelude::*;
//!
//! // Five processes, tolerating two failures; one erroneous suspicion.
//! // (Seed 29 schedules the quorum's detections before the victim's
//! // obituary lands, so the raw run visibly violates FS2.)
//! let trace = ClusterSpec::new(5, 2)
//!     .seed(29)
//!     .suspect(ProcessId::new(1), ProcessId::new(0), 10)
//!     .run();
//!
//! // The run is NOT fail-stop (the detection preceded the crash)...
//! let run = History::from_trace(&trace);
//! assert!(!run.is_fs_ordered());
//!
//! // ...but it is indistinguishable from a fail-stop run (Theorem 5):
//! let fs_run = rearrange_to_fs(&run).unwrap().history;
//! assert!(fs_run.is_fs_ordered());
//! assert!(fs_run.isomorphic(&run));
//! ```

#![warn(missing_docs)]

pub use sfs_apps as apps;
pub use sfs_asys as asys;
pub use sfs_explore as explore;
pub use sfs_history as history;
pub use sfs_service as service;
pub use sfs_tlogic as tlogic;

/// The protocol crate, re-exported under its package name.
pub use sfs;

/// One-line import for the common API surface.
pub mod prelude {
    pub use sfs::{
        AppApi, Application, ClusterSpec, DetectionMode, HeartbeatConfig, ModeSpec, NullApp,
        QuorumPolicy, SfsConfig, SfsMsg, SfsProcess,
    };
    pub use sfs_asys::{
        FaultPlan, LatencyModel, Note, Process, ProcessId, Sim, StopReason, Trace, UniformLatency,
        VirtualTime,
    };
    pub use sfs_explore::{explore, random_walks, ExploreConfig, Pruning, WalkConfig};
    pub use sfs_history::{
        rearrange_by_swaps, rearrange_to_fs, Event, FailedBefore, HappensBefore, History,
    };
    pub use sfs_service::{
        plan_shards, run_service, Backend, LoadProfile, ServiceReport, ServiceSpec,
    };
    pub use sfs_tlogic::{properties, Formula, PropertyReport, Verdict};
}
