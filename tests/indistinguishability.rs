//! End-to-end Theorem 5 checks: every run of the sFS protocol, across
//! sizes, seeds, and workloads, satisfies the sFS suite and is isomorphic
//! to a fail-stop run.

use failstop::prelude::*;
use sfs_history::rearrange_by_swaps;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A run with several overlapping erroneous suspicions.
fn busy_run(n: usize, t: usize, seed: u64) -> Trace {
    let mut spec = ClusterSpec::new(n, t).seed(seed);
    // t distinct victims, suspected by distinct survivors at nearby times.
    for v in 0..t {
        spec = spec.suspect(p(t + v), p(v), 10 + (seed % 7) * (v as u64 + 1));
    }
    spec.run()
}

#[test]
fn sfs_suite_holds_across_seeds_and_sizes() {
    for &(n, t) in &[(5usize, 2usize), (10, 3), (17, 4)] {
        for seed in 0..25 {
            let trace = busy_run(n, t, seed);
            assert!(
                trace.stop_reason().is_complete(),
                "n={n} seed={seed} did not quiesce"
            );
            let h = History::from_trace(&trace);
            h.validate()
                .unwrap_or_else(|e| panic!("n={n} seed={seed}: invalid history: {e}"));
            for report in properties::check_sfs_suite(&h, true) {
                assert!(report.is_ok(), "n={n} t={t} seed={seed}: {report}");
            }
        }
    }
}

#[test]
fn every_sfs_run_has_an_isomorphic_fs_run() {
    for &(n, t) in &[(5usize, 2usize), (10, 3)] {
        for seed in 0..25 {
            let trace = busy_run(n, t, seed);
            let h = History::from_trace(&trace);
            let report = rearrange_to_fs(&h)
                .unwrap_or_else(|e| panic!("n={n} seed={seed}: no FS order: {e}"));
            assert!(report.history.is_fs_ordered());
            assert!(
                report.history.isomorphic(&h),
                "projections must match for every process"
            );
            assert!(
                report.history.validate().is_ok(),
                "rearranged run must still be valid"
            );
        }
    }
}

#[test]
fn both_rearrangement_engines_agree() {
    for seed in 0..15 {
        let trace = busy_run(10, 3, seed);
        let h = History::from_trace(&trace);
        let topo = rearrange_to_fs(&h).expect("topological engine");
        let swaps = rearrange_by_swaps(&h, None).expect("paper's swap engine");
        assert_eq!(topo.bad_pairs, swaps.bad_pairs);
        for r in [&topo.history, &swaps.history] {
            assert!(r.is_fs_ordered());
            assert!(r.isomorphic(&h));
        }
    }
}

#[test]
fn witness_property_holds_for_all_sfs_detections() {
    for seed in 0..25 {
        let trace = busy_run(10, 3, seed);
        let report = properties::check_witness(&trace, 3);
        assert!(report.is_ok(), "seed {seed}: {report}");
    }
}

#[test]
fn detected_processes_really_crash_and_survivors_agree() {
    for seed in 0..25 {
        let trace = busy_run(10, 3, seed);
        let crashed: std::collections::BTreeSet<ProcessId> = trace.crashed().into_iter().collect();
        // sFS2a: every detected process is in the crashed set (quiescent run).
        let mut survivor_views: std::collections::BTreeMap<
            ProcessId,
            std::collections::BTreeSet<ProcessId>,
        > = Default::default();
        for (by, of) in trace.detections() {
            assert!(
                crashed.contains(&of),
                "seed {seed}: {of} detected but alive at quiescence"
            );
            survivor_views.entry(by).or_default().insert(of);
        }
        // FS1 ⇒ at quiescence every survivor's failed set equals the
        // crashed set exactly.
        for p in ProcessId::all(10) {
            if crashed.contains(&p) {
                continue;
            }
            let view = survivor_views.remove(&p).unwrap_or_default();
            assert_eq!(
                view, crashed,
                "seed {seed}: survivor {p} has a different view"
            );
        }
    }
}

#[test]
fn ltl_engine_agrees_with_direct_checkers() {
    use sfs_tlogic::{Evaluator, Formula};
    for seed in 0..10 {
        let trace = busy_run(5, 2, seed);
        let h = History::from_trace(&trace);
        let eval = Evaluator::new(&h);
        // FS2 as an LTL formula over all pairs.
        let mut conjuncts = Vec::new();
        for i in ProcessId::all(5) {
            for j in ProcessId::all(5) {
                conjuncts.push(Formula::implies(
                    Formula::failed_by(j, i),
                    Formula::crashed(i),
                ));
            }
        }
        let fs2 = Formula::always(Formula::And(conjuncts));
        let ltl_verdict = eval.holds(&fs2);
        let direct_verdict = properties::check_fs2(&h).is_ok();
        assert_eq!(
            ltl_verdict, direct_verdict,
            "seed {seed}: engines disagree on FS2"
        );

        // sFS2a: □(FAILED_j(i) ⇒ ◇CRASH_i).
        let mut conjuncts = Vec::new();
        for i in ProcessId::all(5) {
            for j in ProcessId::all(5) {
                conjuncts.push(Formula::implies(
                    Formula::failed_by(j, i),
                    Formula::eventually(Formula::crashed(i)),
                ));
            }
        }
        let sfs2a = Formula::always(Formula::And(conjuncts));
        assert_eq!(
            eval.holds(&sfs2a),
            properties::check_sfs2a(&h, true).is_ok(),
            "seed {seed}: engines disagree on sFS2a"
        );
    }
}
