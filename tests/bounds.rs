//! End-to-end lower-bound checks: Theorems 6–7 and Corollary 8 as
//! executable facts.

use failstop::apps::scenarios::{cycle_among_victims, WitnessAttack};
use failstop::prelude::*;
use sfs::quorum::{is_feasible, max_tolerable, min_quorum};
use sfs::{SfsConfig, SfsProcess};

#[test]
fn infeasible_configurations_are_rejected_at_construction() {
    // Corollary 8: n must exceed t².
    for t in 1usize..=6 {
        let frontier = t * t;
        if frontier >= 1 {
            let config = SfsConfig::new(frontier, t);
            assert!(
                SfsProcess::new(config, NullApp).is_err(),
                "n = t² = {frontier} must be rejected for t = {t}"
            );
        }
        let config = SfsConfig::new(frontier + 1, t);
        assert!(
            SfsProcess::new(config, NullApp).is_ok(),
            "n = t²+1 = {} must be accepted for t = {t}",
            frontier + 1
        );
    }
}

#[test]
fn quorum_bound_matches_formula_across_grid() {
    for n in 2usize..=64 {
        for t in 2usize..=8 {
            let q = min_quorum(n, t);
            assert!(q * t > n * (t - 1));
            assert!((q - 1) * t <= n * (t - 1));
        }
    }
}

#[test]
fn witness_attack_is_monotone_in_quorum_size() {
    // For a fixed scenario, raising the vote threshold can only destroy
    // the cycle, never create one.
    let (n, t) = (12usize, 3usize);
    let feasible_votes = WitnessAttack {
        n,
        t,
        quorum: 0,
        seed: 0,
    }
    .max_available_votes();
    let outcomes: Vec<(usize, bool)> = (1..=min_quorum(n, t))
        .map(|quorum| {
            let trace = WitnessAttack {
                n,
                t,
                quorum,
                seed: 0,
            }
            .run();
            (quorum, cycle_among_victims(&trace, t))
        })
        .collect();
    // Cycles form exactly up to the adversary's vote budget and never
    // above it — a sharp threshold.
    for &(quorum, cycle) in &outcomes {
        assert_eq!(
            cycle,
            quorum <= feasible_votes,
            "quorum {quorum} (budget {feasible_votes}): cycle = {cycle}"
        );
    }
    // And at the Theorem 7 bound it must be gone.
    let trace = WitnessAttack {
        n,
        t,
        quorum: min_quorum(n, t),
        seed: 0,
    }
    .run();
    assert!(!cycle_among_victims(&trace, t));
}

#[test]
fn attack_cycles_violate_sfs2b_and_nothing_detectable_survives_rearrangement() {
    let (n, t) = (6usize, 2usize);
    let quorum = WitnessAttack {
        n,
        t,
        quorum: 0,
        seed: 0,
    }
    .max_available_votes();
    let trace = WitnessAttack {
        n,
        t,
        quorum,
        seed: 0,
    }
    .run();
    let h = History::from_trace(&trace);
    // The cycle makes the run non-rearrangeable: there is no isomorphic
    // fail-stop run (the cycle forces contradictory crash orderings).
    assert!(!properties::check_sfs2b(&h).is_ok());
    let completed = h.complete_missing_crashes();
    assert!(
        rearrange_to_fs(&completed).is_err(),
        "a cyclic run must not admit an FS ordering"
    );
}

#[test]
fn max_tolerable_is_consistent_with_feasibility() {
    for n in 1usize..=100 {
        let t = max_tolerable(n);
        assert!(is_feasible(n, t) || t == 0);
        assert!(!is_feasible(n, t + 1));
    }
}

#[test]
fn wait_for_all_survives_where_fixed_quorum_cannot() {
    // n = 9, t = 3 is infeasible for fixed quorums (Cor. 8) but fine for
    // wait-for-all.
    let config = SfsConfig::new(9, 3);
    assert!(SfsProcess::new(config, NullApp).is_err());
    let config = SfsConfig::new(9, 3).quorum(QuorumPolicy::WaitForAll);
    assert!(SfsProcess::new(config, NullApp).is_ok());
    // And it actually detects:
    let trace = ClusterSpec::new(9, 3)
        .quorum(QuorumPolicy::WaitForAll)
        .suspect(ProcessId::new(1), ProcessId::new(0), 10)
        .run();
    assert_eq!(trace.crashed(), vec![ProcessId::new(0)]);
    assert_eq!(trace.detections().len(), 8);
}
