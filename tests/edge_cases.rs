//! Boundary configurations: the smallest systems the theory admits.

use failstop::prelude::*;
use sfs::quorum::min_quorum;
use sfs::{SfsConfig, SfsProcess};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[test]
fn two_processes_one_failure() {
    // n = 2, t = 1: the quorum degenerates to 1 (a single vote — one's
    // own suffices, since a cycle needs two failures and t = 1 forbids
    // that).
    assert_eq!(min_quorum(2, 1), 1);
    let trace = ClusterSpec::new(2, 1).seed(3).suspect(p(1), p(0), 10).run();
    assert_eq!(trace.crashed(), vec![p(0)]);
    assert_eq!(trace.detections(), vec![(p(1), p(0))]);
    let h = History::from_trace(&trace);
    for report in properties::check_sfs_suite(&h, true) {
        assert!(report.is_ok(), "{report}");
    }
    let fixed = rearrange_to_fs(&h).expect("rearrangeable");
    assert!(fixed.history.is_fs_ordered());
}

#[test]
fn single_process_system_is_trivially_fine() {
    let config = SfsConfig::new(1, 0);
    assert!(SfsProcess::new(config, NullApp).is_ok());
    let trace = ClusterSpec::new(1, 0).run();
    assert!(trace.detections().is_empty());
    assert!(trace.crashed().is_empty());
    assert_eq!(trace.stop_reason(), StopReason::Quiescent);
}

/// Every detector selection, for the degenerate-shape sweeps below.
const ALL_MODES: [ModeSpec; 4] = [
    ModeSpec::SfsOneRound,
    ModeSpec::Unilateral,
    ModeSpec::CheapBroadcast,
    ModeSpec::Oracle,
];

#[test]
fn n_equals_one_terminates_cleanly_under_every_mode() {
    // A 1-process cluster has no peers to suspect, vote with, or detect:
    // every detector must reach a clean stop with an empty story. The
    // oracle's poll timer re-arms forever, so that mode terminates at the
    // (deliberately small) horizon rather than quiescing — that is its
    // clean stop, pinned here explicitly.
    for mode in ALL_MODES {
        let trace = ClusterSpec::new(1, 0).mode(mode).max_time(500).run();
        assert!(
            trace.detections().is_empty(),
            "{mode:?}: detection in a 1-process system"
        );
        assert!(trace.crashed().is_empty(), "{mode:?}");
        let expected = if mode == ModeSpec::Oracle {
            StopReason::MaxTime
        } else {
            StopReason::Quiescent
        };
        assert_eq!(trace.stop_reason(), expected, "{mode:?}");
    }
}

#[test]
fn t_zero_cluster_handles_an_injected_suspicion_under_every_mode() {
    // t = 0 promises "no failures", but the environment can still inject
    // a suspicion. Pin what each detector does with it — all of them must
    // terminate cleanly rather than wedge.
    for mode in ALL_MODES {
        let trace = ClusterSpec::new(3, 0)
            .mode(mode)
            .max_time(5_000)
            .suspect(p(1), p(0), 10)
            .run();
        match mode {
            // Quorum degenerates to 1 vote: the suspicion detects and
            // kills p0 exactly as with t = 1.
            ModeSpec::SfsOneRound | ModeSpec::CheapBroadcast => {
                assert_eq!(trace.crashed(), vec![p(0)], "{mode:?}");
                assert!(!trace.detections().is_empty(), "{mode:?}");
                assert_eq!(trace.stop_reason(), StopReason::Quiescent, "{mode:?}");
            }
            // Unilateral detection tells no one and kills no one.
            ModeSpec::Unilateral => {
                assert_eq!(trace.crashed(), vec![], "{mode:?}");
                assert_eq!(trace.detections(), vec![(p(1), p(0))], "{mode:?}");
                assert_eq!(trace.stop_reason(), StopReason::Quiescent, "{mode:?}");
            }
            // A perfect detector takes no hints: nothing happens.
            ModeSpec::Oracle => {
                assert_eq!(trace.crashed(), vec![], "{mode:?}");
                assert!(trace.detections().is_empty(), "{mode:?}");
                assert_eq!(trace.stop_reason(), StopReason::MaxTime, "{mode:?}");
            }
        }
    }
}

#[test]
fn t_equals_n_is_gracefully_infeasible_for_the_quorum_protocol() {
    // With t = n, no quorum policy can promise progress: FixedMinimum has
    // no guaranteed survivors, and WaitForAll needs one process outside
    // the failure set. The clean behavior is a QuorumError from
    // validation — never a panic or a hang.
    for policy in [QuorumPolicy::FixedMinimum, QuorumPolicy::WaitForAll] {
        let config = SfsConfig::new(3, 3).quorum(policy);
        assert!(
            SfsProcess::new(config, NullApp).is_err(),
            "t = n accepted under {policy:?}"
        );
    }
    // And the error is total: even n = 1, t = 1.
    assert!(SfsProcess::new(SfsConfig::new(1, 1), NullApp).is_err());
}

#[test]
fn t_equals_n_runs_cleanly_under_non_quorum_modes() {
    // The comparator detectors don't gather votes, so t = n is runnable
    // there; they must terminate cleanly with their usual semantics.
    for mode in [
        ModeSpec::Unilateral,
        ModeSpec::CheapBroadcast,
        ModeSpec::Oracle,
    ] {
        let trace = ClusterSpec::new(3, 3)
            .mode(mode)
            .max_time(5_000)
            .suspect(p(1), p(0), 10)
            .crash(p(2), 50)
            .run();
        assert!(
            trace.stop_reason() == StopReason::Quiescent
                || trace.stop_reason() == StopReason::MaxTime,
            "{mode:?}: {:?}",
            trace.stop_reason()
        );
        assert!(trace.crashed().contains(&p(2)), "{mode:?}");
        if mode == ModeSpec::Oracle {
            // The oracle detects the real crash (and only it), FS2-clean.
            let h = History::from_trace(&trace);
            assert!(properties::check_fs2(&h).is_ok(), "{mode:?}");
            assert!(
                trace.detections().iter().all(|&(_, of)| of == p(2)),
                "{mode:?}"
            );
        }
    }
}

#[test]
fn self_suspicion_injection_is_ignored() {
    // The environment tells p0 to suspect itself; sFS2c demands nothing
    // come of it.
    let trace = ClusterSpec::new(3, 1).suspect(p(0), p(0), 10).run();
    assert!(trace.detections().is_empty());
    assert!(trace.crashed().is_empty());
    let h = History::from_trace(&trace);
    assert!(properties::check_sfs2c(&h).is_ok());
}

#[test]
fn suspicion_of_already_detected_process_is_idempotent() {
    let trace = ClusterSpec::new(5, 2)
        .seed(1)
        .suspect(p(1), p(0), 10)
        .suspect(p(2), p(0), 200) // long after the first round finished
        .run();
    // Exactly one detection per survivor, one crash.
    assert_eq!(trace.crashed(), vec![p(0)]);
    let mut seen = std::collections::BTreeSet::new();
    for (by, of) in trace.detections() {
        assert_eq!(of, p(0));
        assert!(seen.insert(by), "duplicate detection by {by}");
    }
}

#[test]
fn suspicion_of_a_crashed_process_still_completes() {
    // p0 crashes for real; later p1 suspects it (e.g. a slow timeout).
    // The round completes normally — a crashed process cannot vote but
    // the survivors suffice.
    let trace = ClusterSpec::new(5, 2)
        .seed(2)
        .crash(p(0), 10)
        .suspect(p(1), p(0), 50)
        .run();
    let detectors: std::collections::BTreeSet<_> =
        trace.detections().into_iter().map(|(by, _)| by).collect();
    assert_eq!(detectors.len(), 4, "{}", trace.to_pretty_string());
    let h = History::from_trace(&trace);
    assert!(
        properties::check_fs2(&h).is_ok(),
        "true crash: even FS2 holds"
    );
}

#[test]
fn simultaneous_suspicions_of_the_same_victim_merge() {
    let trace = ClusterSpec::new(5, 2)
        .seed(9)
        .suspect(p(1), p(0), 10)
        .suspect(p(2), p(0), 10)
        .suspect(p(3), p(0), 10)
        .run();
    assert_eq!(trace.crashed(), vec![p(0)]);
    let h = History::from_trace(&trace);
    for report in properties::check_sfs_suite(&h, true) {
        assert!(report.is_ok(), "{report}");
    }
}

#[test]
fn event_budget_stops_runaway_runs() {
    // A pathological latency of 1 with heartbeats generates events
    // forever; the budget must stop the run.
    let mut spec = ClusterSpec::new(3, 1).heartbeat(HeartbeatConfig {
        interval: 2,
        timeout: 1_000,
        check_every: 2,
    });
    spec.max_events = 500;
    let trace = spec.run();
    assert_eq!(trace.stop_reason(), StopReason::MaxEvents);
    assert!(trace.events().len() <= 500);
}

#[test]
fn all_but_one_crash_under_wait_for_all() {
    // Wait-for-all tolerates t = n - 1: kill everyone except p3.
    let trace = ClusterSpec::new(4, 3)
        .quorum(QuorumPolicy::WaitForAll)
        .seed(5)
        .suspect(p(3), p(0), 10)
        .suspect(p(3), p(1), 120)
        .suspect(p(3), p(2), 240)
        .run();
    assert_eq!(trace.crashed().len(), 3, "{}", trace.to_pretty_string());
    let survivor_detections: Vec<_> = trace
        .detections()
        .into_iter()
        .filter(|&(by, _)| by == p(3))
        .collect();
    assert_eq!(
        survivor_detections.len(),
        3,
        "the survivor detected everyone"
    );
    let h = History::from_trace(&trace);
    for report in properties::check_sfs_suite(&h, true) {
        assert!(report.is_ok(), "{report}");
    }
}
