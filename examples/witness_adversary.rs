//! The Appendix A.3 adversary: why quorums must intersect (Theorems 6–7).
//!
//! An asynchronous scheduler partitions the processes into `t` sets,
//! delays each set's messages to the next set indefinitely, and staggers
//! every process's suspicion order so that each of `t` victims completes
//! its detection round just before its own obituary lands. If the
//! protocol's vote threshold is low enough that the resulting quorums
//! have no common witness, the failed-before relation acquires a
//! `t`-cycle — sFS2b falls, and with it indistinguishability from
//! fail-stop.
//!
//! At the Theorem 7 threshold (`⌊n(t-1)/t⌋ + 1`) the same adversary is
//! powerless: some victim always dies before completing its round.
//!
//! Run with: `cargo run --example witness_adversary`

use failstop::apps::scenarios::{cycle_among_victims, WitnessAttack};
use failstop::prelude::*;
use sfs::quorum::min_quorum;

fn main() {
    println!("{:-^78}", " the A.3 witness-violation adversary ");
    for (n, t) in [(6usize, 2usize), (9, 3), (12, 3), (16, 4), (17, 4)] {
        let safe = min_quorum(n, t);
        let attack_q = WitnessAttack {
            n,
            t,
            quorum: 0,
            seed: 0,
        }
        .max_available_votes();
        println!("\nn = {n}, t = {t}: safe quorum = {safe}, adversary can feed = {attack_q}");
        let mut quorums = vec![attack_q];
        if sfs::quorum::is_feasible(n, t) {
            quorums.push(safe);
        } else {
            println!(
                "  quorum {safe:>2}: INFEASIBLE — Corollary 8 requires n > t² \
                 ({n} ≤ {}), the safe quorum cannot survive t failures",
                t * t
            );
        }
        for quorum in quorums {
            let attack = WitnessAttack {
                n,
                t,
                quorum,
                seed: 0,
            };
            let trace = attack.run();
            let cycle = cycle_among_victims(&trace, t);
            let run = History::from_trace(&trace);
            let sfs2b = properties::check_sfs2b(&run);
            println!(
                "  quorum {quorum:>2}: detections = {:>2}, failed-before cycle = {:<5} ({})",
                trace.detections().len(),
                cycle,
                sfs2b
            );
            if cycle {
                // Show the cycle explicitly.
                let fb = FailedBefore::from_history(&run);
                let c = fb.find_cycle().unwrap();
                let pretty: Vec<String> = c.iter().map(|p| p.to_string()).collect();
                println!(
                    "             cycle: {} -> (back to start)",
                    pretty.join(" -> ")
                );
            }
        }
    }
    println!(
        "\nconclusion: below the Theorem 7 bound the adversary manufactures a cycle; \
         at the bound it cannot — the bound is tight."
    );
}
