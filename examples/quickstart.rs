//! Quickstart: an erroneous failure detection that no process can
//! distinguish from a real fail-stop crash.
//!
//! Run with: `cargo run --example quickstart`

use failstop::prelude::*;

fn main() {
    // A 5-process system configured to tolerate t = 2 failures. The
    // protocol validates the paper's Corollary 8 bound (n > t²) at
    // construction time.
    let n = 5;
    let t = 2;
    println!("simulated fail-stop: n = {n}, t = {t}");
    println!(
        "one-round quorum (Theorem 7): > n(t-1)/t  =>  {} votes\n",
        sfs::quorum::min_quorum(n, t)
    );

    // p1 spuriously suspects p0 at tick 10 — say, a timeout fired even
    // though p0 is perfectly healthy. In an asynchronous system this is
    // unavoidable (Theorem 1: perfect detection is impossible).
    let trace = ClusterSpec::new(n, t)
        .seed(29)
        .suspect(ProcessId::new(1), ProcessId::new(0), 10)
        .run();

    println!("--- trace ({} events) ---", trace.events().len());
    for event in trace.events() {
        println!("{event}");
    }

    // What happened: the obituary "p0 failed" was broadcast, a quorum
    // confirmed it, every survivor executed failed(p0) — and p0, upon
    // receiving its own obituary, crashed. The erroneous detection was
    // MADE true (sFS2a).
    println!("\ncrashed:    {:?}", trace.crashed());
    println!("detections: {:?}", trace.detections());

    // The run violates FS2 (p0 was detected before it crashed)...
    let run = History::from_trace(&trace);
    let fs2 = properties::check_fs2(&run);
    println!("\nFS2 on the raw run: {fs2}");

    // ...but every simulated-fail-stop property holds:
    for report in properties::check_sfs_suite(&run, trace.stop_reason().is_complete()) {
        println!("{report}");
    }

    // And by Theorem 5 there is a fail-stop run that every process finds
    // indistinguishable from this one — the rearrangement engine builds it.
    let report = rearrange_to_fs(&run).expect("sFS runs always rearrange");
    println!(
        "\nTheorem 5: rearranged {} bad pair(s) into an FS ordering; \
         isomorphic to the original for every process: {}",
        report.bad_pairs,
        report.history.isomorphic(&run),
    );
    assert!(report.history.is_fs_ordered());
}
