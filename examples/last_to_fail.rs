//! Determining the last process to fail (§6, [Ske85]) — a protocol that
//! is *sensitive* to the acyclicity of failure detection (sFS2b).
//!
//! After a total failure, recovery intersects the stable-storage logs of
//! the crashed processes to find the "last to fail" candidates. With
//! acyclic detection the sinks of the logged failed-before relation are
//! exactly those candidates; with cyclic detection there is no consistent
//! answer (or worse, a confidently wrong one — the paper's two-process
//! example).
//!
//! Run with: `cargo run --example last_to_fail`

use failstop::apps::last_to_fail::{recover_last_to_fail, true_last_to_fail, Recovery};
use failstop::prelude::*;

fn staggered_total_failure(mode: ModeSpec, n: usize, t: usize, seed: u64) -> Trace {
    let mut spec = ClusterSpec::new(n, t)
        .mode(mode)
        .heartbeat(HeartbeatConfig {
            interval: 10,
            timeout: 50,
            check_every: 10,
        })
        .seed(seed)
        .max_time(5_000);
    for i in 0..n {
        spec = spec.crash(ProcessId::new(i), 300 + 300 * i as u64);
    }
    spec.run()
}

fn main() {
    // --- healthy case: staggered total failure under sFS -----------------
    let trace = staggered_total_failure(ModeSpec::SfsOneRound, 5, 2, 3);
    let truth = true_last_to_fail(&trace).expect("total failure");
    println!("staggered total failure of 5 processes under sFS:");
    println!("  crash order (global truth): {:?}", trace.crashed());
    match recover_last_to_fail(&trace) {
        Recovery::Candidates(c) => {
            println!("  recovery candidates:        {c:?} (truth: {truth})");
        }
        Recovery::Inconsistent(cycle) => unreachable!("sFS logs cannot cycle: {cycle:?}"),
    }

    // --- the paper's two-process story, forced via cheap detection -------
    // p0 falsely detects p1 and crashes; p1 detects p0, works on, crashes
    // last. Under a detector without sFS2b both logs blame each other.
    println!("\nthe paper's §6 story (cyclic detection):");
    let trace = ClusterSpec::new(2, 1)
        .mode(ModeSpec::CheapBroadcast)
        .without_self_crash() // the cheap model lets victims outlive obituaries
        .suspect(ProcessId::new(0), ProcessId::new(1), 10)
        .suspect(ProcessId::new(1), ProcessId::new(0), 10)
        .crash(ProcessId::new(0), 100)
        .crash(ProcessId::new(1), 200)
        .run();
    println!("  crash order (global truth): {:?}", trace.crashed());
    match recover_last_to_fail(&trace) {
        Recovery::Candidates(c) => println!("  recovery candidates: {c:?}"),
        Recovery::Inconsistent(cycle) => {
            println!(
                "  recovery IMPOSSIBLE: logged failed-before cycle {:?} — \
                 every process claims the other failed first",
                cycle
            );
        }
    }

    // --- unilateral detection: a confidently wrong answer ----------------
    println!("\nunilateral detection (a confidently wrong answer):");
    let trace = ClusterSpec::new(2, 1)
        .mode(ModeSpec::Unilateral)
        .suspect(ProcessId::new(0), ProcessId::new(1), 10)
        .crash(ProcessId::new(0), 100)
        .crash(ProcessId::new(1), 500)
        .run();
    let truth = true_last_to_fail(&trace).unwrap();
    match recover_last_to_fail(&trace) {
        Recovery::Candidates(c) => {
            println!("  true last to fail:   {truth}");
            println!("  recovery candidates: {c:?}");
            if !c.contains(&truth) {
                println!("  -> recovery EXCLUDED the true last process (p0's false log)");
            }
        }
        Recovery::Inconsistent(cycle) => println!("  cycle: {cycle:?}"),
    }
}
