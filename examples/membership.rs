//! Group membership views on the fail-stop abstraction (§6: "failure
//! detection such as described here is typically done as part of a group
//! membership service").
//!
//! Run with: `cargo run --example membership`

use failstop::apps::membership::{check_convergence, view_log, MembershipApp};
use failstop::prelude::*;

fn main() {
    // Six processes; two failures (one real crash via injection-style
    // suspicion, one erroneous suspicion — indistinguishable to members).
    let trace = ClusterSpec::new(6, 2)
        .seed(9)
        .suspect(ProcessId::new(1), ProcessId::new(0), 10)
        .suspect(ProcessId::new(2), ProcessId::new(5), 60)
        .run_apps(|_| MembershipApp::new());

    println!("view installations per process:");
    for (pid, views) in view_log(&trace) {
        println!("  {pid}: {}", views.join(" -> "));
    }
    match check_convergence(&trace) {
        Ok(()) => println!("\nall surviving members converged on the same final view"),
        Err((a, b)) => println!("\nDIVERGENCE between {a} and {b}!"),
    }
    println!("crashed: {:?}", trace.crashed());
}
