//! Leader election (§1 of the paper) under three failure models.
//!
//! The same election code runs on (a) a perfect oracle detector, (b) the
//! simulated-fail-stop protocol, and (c) naive unilateral timeouts. The
//! scenario: the current leader p0 is *falsely* suspected by p1.
//!
//! * Oracle: nothing happens (a perfect detector is never wrong).
//! * sFS: leadership moves to p1 and p0 is killed by its own obituary;
//!   there may be a brief global two-leader window, but NO process ever
//!   observes evidence inconsistent with fail-stop.
//! * Unilateral: p0 survives while p1 also claims leadership — and p1
//!   receives a rebuke from a process it "knows" to be dead, an
//!   observation no fail-stop run can produce.
//!
//! Run with: `cargo run --example election`

use failstop::apps::election::{analyze_election, ElectionApp};
use failstop::prelude::*;

fn run_one(label: &str, mode: ModeSpec, seed: u64) {
    let trace = ClusterSpec::new(5, 2)
        .mode(mode)
        .seed(seed)
        .suspect(ProcessId::new(1), ProcessId::new(0), 10)
        .run_apps(|_| ElectionApp::new());
    let outcome = analyze_election(&trace);
    println!("== {label} ==");
    println!(
        "  claims (in order):        {:?}",
        outcome.claims.iter().map(|&(_, c)| c).collect::<Vec<_>>()
    );
    println!(
        "  max concurrent leaders:   {}",
        outcome.max_concurrent_leaders
    );
    println!(
        "  FS-impossible observations: {}",
        outcome.observed_anomalies
    );
    println!("  crashed:                  {:?}", trace.crashed());
    println!();
}

fn main() {
    println!("scenario: p1 falsely suspects the current leader p0\n");
    run_one(
        "perfect oracle (unimplementable, Theorem 1)",
        ModeSpec::Oracle,
        7,
    );
    run_one(
        "simulated fail-stop (the paper's protocol)",
        ModeSpec::SfsOneRound,
        7,
    );
    run_one(
        "unilateral timeouts (what goes wrong)",
        ModeSpec::Unilateral,
        7,
    );

    println!("sweep over 100 seeds:");
    let mut sfs_anomalies = 0usize;
    let mut uni_anomalies = 0usize;
    let mut sfs_two_leader_windows = 0usize;
    for seed in 0..100 {
        let sfs = analyze_election(
            &ClusterSpec::new(5, 2)
                .seed(seed)
                .suspect(ProcessId::new(1), ProcessId::new(0), 10)
                .run_apps(|_| ElectionApp::new()),
        );
        sfs_anomalies += sfs.observed_anomalies;
        sfs_two_leader_windows += usize::from(sfs.max_concurrent_leaders >= 2);
        let uni = analyze_election(
            &ClusterSpec::new(5, 2)
                .mode(ModeSpec::Unilateral)
                .seed(seed)
                .suspect(ProcessId::new(1), ProcessId::new(0), 10)
                .run_apps(|_| ElectionApp::new()),
        );
        uni_anomalies += uni.observed_anomalies;
    }
    println!("  sFS:        {sfs_anomalies:>3} observable anomalies; {sfs_two_leader_windows} runs had an (invisible) global two-leader window");
    println!("  unilateral: {uni_anomalies:>3} observable anomalies");
    assert_eq!(
        sfs_anomalies, 0,
        "sFS must never leak an FS-impossible observation"
    );
}
