//! Fault-tolerant work distribution: the coordinator and a worker are
//! killed mid-stream; every task still completes, because under
//! simulated fail-stop "detected" really means "dead" and reassignment
//! is safe.
//!
//! Run with: `cargo run --example workpool`

use failstop::apps::workpool::{analyze_workpool, WorkPoolApp};
use failstop::prelude::*;

fn main() {
    let tasks = 12;
    let trace = ClusterSpec::new(6, 2)
        .seed(7)
        .latency(1, 40)
        .suspect(ProcessId::new(2), ProcessId::new(0), 30) // kill the coordinator
        .suspect(ProcessId::new(3), ProcessId::new(1), 50) // then kill a worker
        .run_apps(|_| WorkPoolApp::new(tasks));

    let outcome = analyze_workpool(&trace);
    println!("tasks:            {tasks}");
    println!("distinct executed: {}", outcome.tasks_executed.len());
    println!(
        "total executions:  {} (duplicates = at-least-once reassignment)",
        outcome.total_executions
    );
    println!("completion seen:   {}", outcome.all_done_observed);
    println!("crashed:           {:?}", trace.crashed());
    assert_eq!(
        outcome.tasks_executed.len(),
        tasks as usize,
        "no task may be lost"
    );
}
