//! The same protocol code on real OS threads: a live sFS cluster over
//! crossbeam channels, with a scripted crash and heartbeat timeouts
//! detecting it — all in *virtual* time. The event-driven router owns a
//! timer wheel of logical deadlines and advances the virtual clock at
//! compute speed, so this run takes milliseconds of wall time while
//! covering a 600-tick horizon, and the crash lands at exactly tick 200
//! on every execution.
//!
//! Run with: `cargo run --example threaded`

use failstop::prelude::*;
use sfs::{DetectionMode, SfsConfig};
use sfs_asys::net::{Runtime, RuntimeConfig};
use sfs_asys::{FaultPlan, VirtualTime};
use std::time::Duration;

fn main() {
    let n = 4;
    let t = 1;
    println!("spawning {n} sFS process threads (t = {t})...");
    // Mark protocol traffic as infrastructure so the trace projects onto
    // the paper's model alphabet (see DESIGN.md §8.2). The crash is a
    // wheel entry: it fires at virtual tick 200, before any message due
    // at that instant, and the horizon bounds the self-rearming
    // heartbeats that would otherwise run forever.
    let config = RuntimeConfig {
        classify: Some(Box::new(|m: &SfsMsg<()>| !m.is_app())),
        faults: FaultPlan::new().crash_at(ProcessId::new(2), VirtualTime::from_ticks(200)),
        max_time: VirtualTime::from_ticks(600),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::spawn(n, config, |pid| {
        // Heartbeats in virtual ticks: beat every 30, suspect after 150
        // of silence — plenty of room to detect the tick-200 crash
        // before the tick-600 horizon.
        let config = SfsConfig::new(n, t)
            .mode(DetectionMode::SfsOneRound)
            .heartbeat(Some(HeartbeatConfig {
                interval: 30,
                timeout: 150,
                check_every: 40,
            }));
        let process = SfsProcess::new(config, NullApp).expect("feasible configuration");
        let _ = pid;
        Box::new(process)
    });

    // Heartbeating systems never quiesce, so `drain` returns false as
    // soon as the run stalls at its 600-tick horizon — which is exactly
    // the maximal bounded run we want.
    let quiescent = rt.drain(Duration::from_secs(30));
    assert!(!quiescent, "self-rearming heartbeats stall at the horizon");
    let trace = rt.shutdown();

    println!("\ntrace summary:");
    println!(
        "  messages sent/delivered: {}/{}",
        trace.stats().messages_sent,
        trace.stats().messages_delivered
    );
    println!("  crashed:    {:?}", trace.crashed());
    println!("  detections: {:?}", trace.detections());

    // The recorded trace obeys the same formal properties as simulated
    // runs — check the safety suite (liveness is judged vacuous because a
    // horizon-bounded run is a truncated prefix).
    let run = History::from_trace(&trace);
    for report in [
        properties::check_fs2(&run),
        properties::check_sfs2b(&run),
        properties::check_sfs2c(&run),
        properties::check_sfs2d(&run),
    ] {
        println!("  {report}");
    }

    let detectors: std::collections::BTreeSet<_> =
        trace.detections().iter().map(|&(by, _)| by).collect();
    assert_eq!(detectors.len(), n - 1, "every survivor detected the crash");
    println!(
        "\nall {} survivors detected the crash through the one-round protocol",
        n - 1
    );
}
