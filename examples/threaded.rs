//! The same protocol code on real OS threads: a live sFS cluster over
//! crossbeam channels, with a real crash and a real (wall-clock) heartbeat
//! timeout detecting it.
//!
//! Run with: `cargo run --example threaded`

use failstop::prelude::*;
use sfs::{DetectionMode, SfsConfig};
use sfs_asys::net::{Runtime, RuntimeConfig};
use std::time::Duration;

fn main() {
    let n = 4;
    let t = 1;
    println!("spawning {n} sFS process threads (t = {t})...");
    // Mark protocol traffic as infrastructure so the trace projects onto
    // the paper's model alphabet (see DESIGN.md §8.2).
    let config = RuntimeConfig {
        classify: Some(Box::new(|m: &SfsMsg<()>| !m.is_app())),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::spawn(n, config, |pid| {
        // Wall-clock heartbeats: beat every 30 ms, suspect after 150 ms of
        // silence.
        let config = SfsConfig::new(n, t)
            .mode(DetectionMode::SfsOneRound)
            .heartbeat(Some(HeartbeatConfig {
                interval: 30,
                timeout: 150,
                check_every: 40,
            }));
        let process = SfsProcess::new(config, NullApp).expect("feasible configuration");
        let _ = pid;
        Box::new(process)
    });

    // Let heartbeats flow for a moment, then hard-crash p2.
    rt.run_for(Duration::from_millis(200));
    println!("crashing p2...");
    rt.crash(ProcessId::new(2));

    // Give the survivors time to time out, run the one-round protocol,
    // and detect.
    rt.run_for(Duration::from_millis(600));
    let trace = rt.shutdown();

    println!("\ntrace summary:");
    println!(
        "  messages sent/delivered: {}/{}",
        trace.stats().messages_sent,
        trace.stats().messages_delivered
    );
    println!("  crashed:    {:?}", trace.crashed());
    println!("  detections: {:?}", trace.detections());

    // The recorded trace obeys the same formal properties as simulated
    // runs — check the safety suite (liveness is judged vacuous because a
    // wall-clock run is always a truncated prefix).
    let run = History::from_trace(&trace);
    for report in [
        properties::check_fs2(&run),
        properties::check_sfs2b(&run),
        properties::check_sfs2c(&run),
        properties::check_sfs2d(&run),
    ] {
        println!("  {report}");
    }

    let detectors: std::collections::BTreeSet<_> =
        trace.detections().iter().map(|&(by, _)| by).collect();
    assert_eq!(detectors.len(), n - 1, "every survivor detected the crash");
    println!(
        "\nall {} survivors detected the crash through the one-round protocol",
        n - 1
    );
}
